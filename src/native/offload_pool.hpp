// Host-threads backend: the runtime's scheduling ideas (event-driven task
// off-loading plus adaptive loop work-sharing) running on real std::thread
// workers instead of the simulated SPEs.  This is what makes the library
// usable outside the simulator: examples off-load real kernels here.
//
// The pool mirrors the Cell topology: a fixed set of "SPE" workers that
// serve off-loaded tasks, and a work-sharing primitive that splits a loop
// across the *idle* workers, master-participating — the host analogue of the
// paper's LLP executor.
//
// Execution is work-stealing (DESIGN.md §9): each worker owns a bounded
// Chase–Lev deque.  A task submitted from a worker thread of this pool is
// pushed lock-free onto that worker's own deque (the fast path — nested
// off-loads and parallel_for helpers never touch a lock); tasks submitted
// from outside, and overflow from a full deque, go through a mutex-guarded
// shared injection queue.  An idle worker drains its own deque LIFO, then
// the injection queue, then steals FIFO from its peers (lock-free CAS);
// only after all three come up empty does it park on a condition variable
// with a short timeout backstop, so a lost wakeup race costs at most one
// timeout period of latency, never liveness.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

#include "native/work_deque.hpp"

namespace cbe::trace {
class ConcurrentTraceSink;
class Histogram;
class MetricsRegistry;
}  // namespace cbe::trace

namespace cbe::native {

class OffloadPool;

/// Thrown (through the returned future) when a checked off-load keeps
/// failing its redundant-execution comparison: the pool fails *closed*
/// rather than handing back a result it could not confirm.
class IntegrityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Cooperative cancellation handle for deadline off-loads.  The task owns
/// the computation but must publish results through try_commit(); once the
/// watchdog declares the deadline expired, try_commit() refuses to run the
/// commit function.  Expiry declaration and commit are serialized by one
/// mutex, so a task can never write into storage its caller reclaimed after
/// observing the timeout — the two outcomes (committed / expired) are
/// mutually exclusive.
class DeadlineToken {
 public:
  /// True once the watchdog declared this deadline missed.  Advisory: use
  /// it to stop early; only try_commit() is authoritative for publication.
  bool expired() const;

  /// Runs `commit` and marks the task done, unless the deadline already
  /// expired — then `commit` is not invoked at all and false is returned.
  /// The caller's timeout handler is guaranteed to have exclusive ownership
  /// of the result storage once it runs, because expiry and commit hold the
  /// same lock.
  bool try_commit(const std::function<void()>& commit) const;

 private:
  friend class OffloadPool;
  struct State {
    std::mutex mu;
    bool done = false;     ///< task committed (or legacy task finished)
    bool expired = false;  ///< watchdog declared the deadline missed
  };
  explicit DeadlineToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

class OffloadPool {
 public:
  /// `workers` <= 0 selects hardware_concurrency - 1 (min 1).
  explicit OffloadPool(int workers = 0);
  ~OffloadPool();

  OffloadPool(const OffloadPool&) = delete;
  OffloadPool& operator=(const OffloadPool&) = delete;

  int workers() const noexcept { return static_cast<int>(threads_.size()); }
  /// Workers not currently running a task (approximate, racy by nature).
  int idle_workers() const noexcept;

  /// Off-loads a task; the returned future completes when it ran.
  std::future<void> offload(std::function<void()> task);

  /// Off-loads a computation with a result.
  template <typename F, typename R = std::invoke_result_t<F>>
  std::future<R> offload_result(F&& f) {
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    enqueue([prom, fn = std::forward<F>(f)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          fn();
          prom->set_value();
        } else {
          prom->set_value(fn());
        }
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    });
    return fut;
  }

  /// Off-loads `task`, re-running it up to `max_retries` extra times with
  /// exponential backoff (base_backoff, doubled per attempt) when it throws
  /// — the host analogue of the simulator's transient-DMA retry.  The
  /// future carries the last exception once the budget is exhausted.
  std::future<void> offload_with_retry(
      std::function<void()> task, int max_retries = 2,
      std::chrono::microseconds base_backoff =
          std::chrono::microseconds(100));

  /// Off-loads a computation whose declared result is a 64-bit checksum
  /// (e.g. a CRC of the real output).  A deterministic sample of checked
  /// off-loads — `fraction` set by set_verify_fraction(), drawn by
  /// submission index — is executed twice and the checksums compared; a
  /// mismatch re-runs the task (up to `max_retries` extra attempts, each
  /// verified) and, if agreement is never reached, the future carries an
  /// IntegrityError instead of a value.  A confirmed-or-nothing contract:
  /// the caller can never observe an unverified mismatch as a clean result.
  std::future<std::uint64_t> offload_checked(
      std::function<std::uint64_t()> task, int max_retries = 2);

  /// Sets the redundant-execution sampling fraction for offload_checked
  /// (0 = never verify, 1 = verify everything).  The sample is a pure
  /// function of (seed, submission index), so a run's verify schedule is
  /// reproducible.
  void set_verify_fraction(double fraction, std::uint64_t seed = 0) noexcept;

  /// Off-loads `task` under a wall-clock deadline.  If it has not finished
  /// by then, the miss is counted and `on_timeout` (if any) fires once on
  /// the watchdog thread.  The task itself runs to completion regardless —
  /// host threads cannot be safely killed — so this detects stragglers
  /// rather than cancelling them.  NOTE: because the abandoned task keeps
  /// running, it must not write through references the timeout handler may
  /// invalidate; use the DeadlineToken overload for that.
  std::future<void> offload_with_deadline(
      std::function<void()> task, std::chrono::microseconds deadline,
      std::function<void()> on_timeout = {});

  /// Deadline off-load with safe result publication.  The task receives a
  /// DeadlineToken and must publish its results via token.try_commit(...);
  /// by the time `on_timeout` runs, the deadline has been declared expired
  /// under the token's lock, so any later try_commit is a guaranteed no-op
  /// and the caller may free or reuse the result storage inside
  /// `on_timeout` (or after the miss is observed) without racing the
  /// abandoned task.
  std::future<void> offload_with_deadline(
      std::function<void(const DeadlineToken&)> task,
      std::chrono::microseconds deadline,
      std::function<void()> on_timeout = {});

  /// Work-shares [begin, end) across up to `degree` participants (the
  /// calling thread included, playing the master SPE).  Chunks are claimed
  /// dynamically from an atomic cursor (grain-sized), so late-starting
  /// workers self-balance — the host analogue of the paper's purposeful
  /// load unbalancing.  Blocks until the whole range is done.
  ///
  /// If the body throws, the first exception is captured, remaining chunks
  /// are abandoned, and the exception is rethrown here on the caller once
  /// every running participant has stopped.  The pool stays usable.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t, std::int64_t)>&
                        body,
                    int degree, std::int64_t grain = 256);

  std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }
  /// Task re-executions performed by offload_with_retry.
  std::uint64_t retries() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  /// Deadlines that expired before their task completed.
  std::uint64_t deadline_misses() const noexcept {
    return deadline_misses_.load(std::memory_order_relaxed);
  }
  /// Tasks a worker took from another worker's deque.
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Redundant executions run by offload_checked's sampled verification.
  std::uint64_t verified_reexecs() const noexcept {
    return verified_reexecs_.load(std::memory_order_relaxed);
  }
  /// Checksum disagreements the verification caught.
  std::uint64_t integrity_mismatches() const noexcept {
    return integrity_mismatches_.load(std::memory_order_relaxed);
  }

  /// Streams per-task dispatch/complete events into `sink` (timestamps are
  /// steady-clock ns since pool construction; spe=worker index).  Each
  /// worker writes its own single-writer buffer, so recording is lock-free.
  /// Pass nullptr to detach.  A no-op with CBE_TRACE=OFF.
  void set_trace(trace::ConcurrentTraceSink* sink) noexcept;
  /// Records per-task latency into `m`'s "native.task_us" histogram.
  /// Pass nullptr to detach.  A no-op with CBE_TRACE=OFF.
  void set_metrics(trace::MetricsRegistry* m);

 private:
  /// A queued task plus the causal span of its submitter, captured at
  /// enqueue() so the span survives the thread hop: the worker re-installs
  /// it before recording/running, and cell_profiler can attribute pool-side
  /// TaskDispatch/TaskComplete events to the job that off-loaded them.
  struct Job {
    std::function<void()> fn;
    std::uint64_t span = 0;  // trace::kNoSpan
  };

  struct Deadline {
    std::chrono::steady_clock::time_point at;
    std::shared_ptr<DeadlineToken::State> state;
    std::function<void()> on_timeout;
    bool operator>(const Deadline& o) const noexcept { return at > o.at; }
  };

  std::shared_ptr<DeadlineToken::State> arm_deadline(
      std::chrono::microseconds deadline, std::function<void()> on_timeout);
  void enqueue(std::function<void()> job);
  void worker_loop(int index);
  void watchdog_loop();
  /// Wakes one parked worker iff any are parked (lock-free check first).
  void wake_one();
  /// Steals one task from a peer deque, scanning from `self + 1`.
  Job* try_steal(int self) noexcept;
  bool any_deque_nonempty() const noexcept;

  // Shared injection queue (external submitters + deque overflow) and the
  // park/wake channel; `mu_` guards queue_, stop_, work_epoch_, sleepers_.
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job*> queue_;
  std::uint64_t work_epoch_ = 0;  ///< bumped per lock-free push, for waits
  std::atomic<int> sleepers_{0};  ///< parked workers (producers peek at it)
  // Per-worker Chase–Lev deques; stable addresses across the pool's life.
  std::vector<std::unique_ptr<WorkStealingDeque<Job>>> deques_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
  std::atomic<int> busy_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> steals_{0};

  // Sampled redundant execution (offload_checked).
  std::atomic<double> verify_fraction_{0.0};
  std::atomic<std::uint64_t> verify_seed_{0};
  std::atomic<std::uint64_t> checked_seq_{0};
  std::atomic<std::uint64_t> verified_reexecs_{0};
  std::atomic<std::uint64_t> integrity_mismatches_{0};

  // Observability (see set_trace / set_metrics).
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  std::atomic<trace::ConcurrentTraceSink*> trace_sink_{nullptr};
  std::atomic<trace::Histogram*> task_hist_{nullptr};
  std::atomic<std::uint64_t> next_task_id_{0};

  // Deadline watchdog: one lazily started thread serving a min-heap of
  // outstanding deadlines.
  std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<Deadline>>
      deadlines_;
  std::thread wd_thread_;
  bool wd_stop_ = false;
  std::atomic<std::uint64_t> deadline_misses_{0};
};

}  // namespace cbe::native
