#include "native/offload_pool.hpp"

#include <algorithm>

namespace cbe::native {

OffloadPool::OffloadPool(int workers) {
  if (workers <= 0) {
    workers = std::max(1u, std::thread::hardware_concurrency()) > 1
                  ? static_cast<int>(std::thread::hardware_concurrency()) - 1
                  : 1;
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

OffloadPool::~OffloadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

int OffloadPool::idle_workers() const noexcept {
  return workers() - busy_.load(std::memory_order_relaxed);
}

void OffloadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

std::future<void> OffloadPool::offload(std::function<void()> task) {
  return offload_result([task = std::move(task)] { task(); });
}

void OffloadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    busy_.fetch_add(1, std::memory_order_relaxed);
    job();
    busy_.fetch_sub(1, std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void OffloadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body, int degree,
    std::int64_t grain) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(grain, 1);
  degree = std::clamp(degree, 1, workers() + 1);

  // Shared, self-contained loop state.  Helpers that start late (or after
  // the loop already finished) find the cursor exhausted and return, so the
  // master never has to wait for *queued-but-unstarted* helpers — that wait
  // is what would deadlock a pool whose workers nest parallel_for inside
  // off-loaded tasks.  The master instead waits on the completed-iteration
  // counter, which only running participants advance.
  struct LoopState {
    std::atomic<std::int64_t> cursor;
    std::atomic<std::int64_t> completed{0};
    std::int64_t end;
    std::int64_t grain;
    std::function<void(std::int64_t, std::int64_t)> body;
  };
  auto st = std::make_shared<LoopState>();
  st->cursor.store(begin, std::memory_order_relaxed);
  st->end = end;
  st->grain = grain;
  st->body = body;

  auto run_chunks = [](LoopState& s) {
    for (;;) {
      const std::int64_t lo =
          s.cursor.fetch_add(s.grain, std::memory_order_relaxed);
      if (lo >= s.end) break;
      const std::int64_t hi = std::min(lo + s.grain, s.end);
      s.body(lo, hi);
      s.completed.fetch_add(hi - lo, std::memory_order_acq_rel);
    }
  };

  for (int i = 0; i < degree - 1; ++i) {
    enqueue([st, run_chunks] { run_chunks(*st); });
  }
  run_chunks(*st);  // master participates
  const std::int64_t total = end - begin;
  while (st->completed.load(std::memory_order_acquire) < total) {
    std::this_thread::yield();
  }
}

}  // namespace cbe::native
