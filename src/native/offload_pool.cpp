#include "native/offload_pool.hpp"

#include <algorithm>

#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace cbe::native {

namespace {

/// Identifies the pool (if any) the current thread is a worker of, so
/// enqueue() can take the lock-free own-deque fast path.  Pool identity is
/// checked on every use: threads of pool A submitting into pool B go
/// through B's injection queue like any external thread.
struct WorkerTls {
  OffloadPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerTls tls_worker;

}  // namespace

OffloadPool::OffloadPool(int workers) {
  if (workers <= 0) {
    workers = std::max(1u, std::thread::hardware_concurrency()) > 1
                  ? static_cast<int>(std::thread::hardware_concurrency()) - 1
                  : 1;
  }
  deques_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    deques_.push_back(std::make_unique<WorkStealingDeque<Job>>());
  }
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

void OffloadPool::set_trace(trace::ConcurrentTraceSink* sink) noexcept {
#if CBE_TRACE_ENABLED
  trace_sink_.store(sink, std::memory_order_release);
#else
  (void)sink;
#endif
}

void OffloadPool::set_metrics(trace::MetricsRegistry* m) {
#if CBE_TRACE_ENABLED
  task_hist_.store(m != nullptr ? &m->histogram("native.task_us") : nullptr,
                   std::memory_order_release);
#else
  (void)m;
#endif
}

OffloadPool::~OffloadPool() {
  {
    std::lock_guard lock(wd_mu_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (wd_thread_.joinable()) wd_thread_.join();
  {
    std::lock_guard lock(mu_);
    stop_ = true;
    ++work_epoch_;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Workers drain everything before exiting; anything left here means a
  // task was submitted after shutdown began — never run, but not leaked.
  for (Job* j : queue_) delete j;
  for (auto& d : deques_) {
    while (Job* j = d->pop()) delete j;
  }
}

int OffloadPool::idle_workers() const noexcept {
  return workers() - busy_.load(std::memory_order_relaxed);
}

void OffloadPool::wake_one() {
  // Lock-free in the common no-sleepers case.  When someone is (or is
  // about to be) parked, bump the epoch under the lock so the sleeper's
  // predicate observes it; a sleeper that raced past the check parks for
  // at most one wait_for timeout.
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  {
    std::lock_guard lock(mu_);
    ++work_epoch_;
  }
  cv_.notify_one();
}

void OffloadPool::enqueue(std::function<void()> job) {
  auto* node = new Job{std::move(job), trace::current_span()};
  if (tls_worker.pool == this && tls_worker.index >= 0 &&
      deques_[static_cast<std::size_t>(tls_worker.index)]->push(node)) {
    wake_one();  // lock-free fast path: own-deque push succeeded
    return;
  }
  // External submitter, or the own deque is full: shared injection queue.
  {
    std::lock_guard lock(mu_);
    queue_.push_back(node);
    ++work_epoch_;
  }
  cv_.notify_one();
}

OffloadPool::Job* OffloadPool::try_steal(int self) noexcept {
  const int n = static_cast<int>(deques_.size());
  // Two sweeps so one lost CAS per victim doesn't abandon a loaded deque.
  for (int round = 0; round < 2; ++round) {
    for (int k = 1; k < n; ++k) {
      const int victim = (self + k) % n;
      if (Job* j = deques_[static_cast<std::size_t>(victim)]->steal()) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return j;
      }
    }
  }
  return nullptr;
}

bool OffloadPool::any_deque_nonempty() const noexcept {
  for (const auto& d : deques_) {
    if (d->maybe_nonempty()) return true;
  }
  return false;
}

std::future<void> OffloadPool::offload(std::function<void()> task) {
  return offload_result([task = std::move(task)] { task(); });
}

std::future<void> OffloadPool::offload_with_retry(
    std::function<void()> task, int max_retries,
    std::chrono::microseconds base_backoff) {
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> fut = prom->get_future();
  enqueue([this, prom, task = std::move(task), max_retries, base_backoff] {
    std::chrono::microseconds backoff = base_backoff;
    for (int attempt = 0;; ++attempt) {
      try {
        task();
        prom->set_value();
        return;
      } catch (...) {
        if (attempt >= max_retries) {
          prom->set_exception(std::current_exception());
          return;
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
        if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
    }
  });
  return fut;
}

void OffloadPool::set_verify_fraction(double fraction,
                                      std::uint64_t seed) noexcept {
  verify_fraction_.store(fraction, std::memory_order_relaxed);
  verify_seed_.store(seed, std::memory_order_relaxed);
}

std::future<std::uint64_t> OffloadPool::offload_checked(
    std::function<std::uint64_t()> task, int max_retries) {
  auto prom = std::make_shared<std::promise<std::uint64_t>>();
  std::future<std::uint64_t> fut = prom->get_future();
  // The sample is drawn at submission so the verify schedule depends only on
  // (seed, submission index), not on which worker runs the task or when.
  const std::uint64_t ix = checked_seq_.fetch_add(1, std::memory_order_relaxed);
  const double fraction = verify_fraction_.load(std::memory_order_relaxed);
  bool sampled = fraction >= 1.0;
  if (!sampled && fraction > 0.0) {
    std::uint64_t state = verify_seed_.load(std::memory_order_relaxed) ^
                          (ix * 0x9e3779b97f4a7c15ull + 1);
    sampled = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53 <
              fraction;
  }
  enqueue([this, prom, task = std::move(task), sampled, max_retries] {
    try {
      for (int attempt = 0;; ++attempt) {
        const std::uint64_t r = task();
        if (!sampled) {
          prom->set_value(r);
          return;
        }
        verified_reexecs_.fetch_add(1, std::memory_order_relaxed);
        if (task() == r) {
          prom->set_value(r);
          return;
        }
        integrity_mismatches_.fetch_add(1, std::memory_order_relaxed);
        if (attempt >= max_retries) {
          // Fail closed: agreement was never reached, so no checksum is
          // trustworthy enough to hand back.
          prom->set_exception(std::make_exception_ptr(IntegrityError(
              "offload_checked: redundant executions kept disagreeing")));
          return;
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  return fut;
}

bool DeadlineToken::expired() const {
  std::lock_guard lock(state_->mu);
  return state_->expired;
}

bool DeadlineToken::try_commit(const std::function<void()>& commit) const {
  // One lock serializes commit against the watchdog's expiry declaration:
  // either the commit runs first (and the watchdog then sees done), or the
  // expiry lands first (and the commit is refused).  There is no window in
  // which the task writes while the caller believes it was abandoned.
  std::lock_guard lock(state_->mu);
  if (state_->expired) return false;
  commit();
  state_->done = true;
  return true;
}

std::shared_ptr<DeadlineToken::State> OffloadPool::arm_deadline(
    std::chrono::microseconds deadline, std::function<void()> on_timeout) {
  auto state = std::make_shared<DeadlineToken::State>();
  const auto at = std::chrono::steady_clock::now() + deadline;
  {
    std::lock_guard lock(wd_mu_);
    if (!wd_thread_.joinable()) {
      wd_thread_ = std::thread([this] { watchdog_loop(); });
    }
    deadlines_.push({at, state, std::move(on_timeout)});
  }
  wd_cv_.notify_one();
  return state;
}

std::future<void> OffloadPool::offload_with_deadline(
    std::function<void()> task, std::chrono::microseconds deadline,
    std::function<void()> on_timeout) {
  auto state = arm_deadline(deadline, std::move(on_timeout));
  return offload_result([task = std::move(task), state] {
    // Mark completion even on a throwing task: the future already carries
    // the failure, a deadline miss on top would be noise.
    struct Mark {
      std::shared_ptr<DeadlineToken::State> s;
      ~Mark() {
        std::lock_guard lock(s->mu);
        s->done = true;
      }
    } mark{state};
    task();
  });
}

std::future<void> OffloadPool::offload_with_deadline(
    std::function<void(const DeadlineToken&)> task,
    std::chrono::microseconds deadline, std::function<void()> on_timeout) {
  auto state = arm_deadline(deadline, std::move(on_timeout));
  return offload_result([task = std::move(task), state] {
    task(DeadlineToken(state));
    // Deliberately no unconditional done-marking here: a task that never
    // committed is still outstanding from the watchdog's point of view.
  });
}

void OffloadPool::watchdog_loop() {
  std::unique_lock lock(wd_mu_);
  while (!wd_stop_) {
    if (deadlines_.empty()) {
      wd_cv_.wait(lock, [this] { return wd_stop_ || !deadlines_.empty(); });
      continue;
    }
    const auto next = deadlines_.top().at;
    const bool woken = wd_cv_.wait_until(lock, next, [this, next] {
      return wd_stop_ ||
             (!deadlines_.empty() && deadlines_.top().at < next);
    });
    if (woken) continue;  // stopping, or an earlier deadline arrived
    const auto now = std::chrono::steady_clock::now();
    while (!deadlines_.empty() && deadlines_.top().at <= now) {
      Deadline d = deadlines_.top();
      deadlines_.pop();
      lock.unlock();
      bool missed = false;
      {
        // Declare expiry under the token lock: after this block no
        // try_commit can succeed, so on_timeout (and the caller once it
        // observes the miss) owns the result storage exclusively.
        std::lock_guard token_lock(d.state->mu);
        if (!d.state->done) {
          d.state->expired = true;
          missed = true;
        }
      }
      if (missed) {
        deadline_misses_.fetch_add(1, std::memory_order_relaxed);
        if (d.on_timeout) d.on_timeout();
      }
      lock.lock();
    }
  }
}

void OffloadPool::worker_loop(int index) {
  tls_worker = WorkerTls{this, index};
#if CBE_TRACE_ENABLED
  // Lazily (re-)attach this worker's single-writer buffer when a sink is
  // installed; the buffer pointer is thread-private from then on.
  trace::ConcurrentTraceSink* attached_to = nullptr;
  trace::ConcurrentTraceSink::Buffer* buf = nullptr;
#endif
  WorkStealingDeque<Job>& own = *deques_[static_cast<std::size_t>(index)];
  for (;;) {
    // Own deque (LIFO, lock-free) -> injection queue -> steal (FIFO).
    Job* job = own.pop();
    if (job == nullptr) {
      std::lock_guard lock(mu_);
      if (!queue_.empty()) {
        job = queue_.front();
        queue_.pop_front();
      }
    }
    if (job == nullptr) job = try_steal(index);
    if (job == nullptr) {
      std::unique_lock lock(mu_);
      if (!queue_.empty()) continue;  // raced an injection: rescan
      if (stop_) {
        lock.unlock();
        // Drain stragglers other workers left behind before exiting: a
        // worker only exits once every visible source is empty.
        if (any_deque_nonempty()) continue;
        return;
      }
      const std::uint64_t epoch = work_epoch_;
      sleepers_.fetch_add(1, std::memory_order_seq_cst);
      // The timeout is the backstop for the one benign race (a producer
      // that read sleepers_ == 0 just before this park): it bounds the
      // latency of a lost wakeup, it is not needed for correctness of
      // shutdown (stop_ bumps the epoch under the lock).
      cv_.wait_for(lock, std::chrono::milliseconds(1), [this, epoch] {
        return stop_ || !queue_.empty() || work_epoch_ != epoch;
      });
      sleepers_.fetch_sub(1, std::memory_order_seq_cst);
      continue;
    }

    busy_.fetch_add(1, std::memory_order_relaxed);
    // Re-install the submitter's span for the task's whole execution, so
    // both trace records below and any nested enqueue() inherit it.
    trace::ScopedSpan span(job->span);
#if CBE_TRACE_ENABLED
    trace::ConcurrentTraceSink* sink =
        trace_sink_.load(std::memory_order_acquire);
    if (sink != attached_to) {
      attached_to = sink;
      buf = sink != nullptr ? sink->attach() : nullptr;
    }
    const auto task_id = static_cast<std::int32_t>(
        next_task_id_.fetch_add(1, std::memory_order_relaxed));
    const auto t0 = std::chrono::steady_clock::now();
    if (buf != nullptr) {
      buf->record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t0 - epoch_)
              .count(),
          trace::EventKind::TaskDispatch, index, task_id);
    }
#endif
    job->fn();
    delete job;
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
#if CBE_TRACE_ENABLED
    const auto t1 = std::chrono::steady_clock::now();
    if (buf != nullptr) {
      buf->record(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - epoch_)
              .count(),
          trace::EventKind::TaskComplete, index, task_id);
    }
    if (trace::Histogram* h = task_hist_.load(std::memory_order_acquire)) {
      h->observe(std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
#endif
    busy_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void OffloadPool::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body, int degree,
    std::int64_t grain) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(grain, 1);
  degree = std::clamp(degree, 1, workers() + 1);

  // Shared, self-contained loop state.  Chunks are claimed from one atomic
  // cursor, so every index in [begin, end) is covered by exactly one chunk
  // — including the short tail when the trip count does not divide evenly
  // (hi is clamped to end; the next claimant sees lo >= end and stops).
  // Helpers that start late (or after the loop already finished) find the
  // cursor exhausted and return, so the master never has to wait for
  // *queued-but-unstarted* helpers — that wait is what would deadlock a
  // pool whose workers nest parallel_for inside off-loaded tasks.  The
  // master instead waits on the completed-iteration counter, which only
  // running participants advance.  Helper tasks are submitted through
  // enqueue(), so a helper spawned from a worker lands in that worker's
  // own deque and idle peers pick it up by stealing.
  struct LoopState {
    std::atomic<std::int64_t> cursor;
    std::atomic<std::int64_t> completed{0};
    std::atomic<int> inflight{0};  ///< participants inside run_chunks
    std::atomic<bool> has_error{false};
    std::int64_t end;
    std::int64_t grain;
    std::function<void(std::int64_t, std::int64_t)> body;
    std::mutex err_mu;
    std::exception_ptr error;
  };
  auto st = std::make_shared<LoopState>();
  st->cursor.store(begin, std::memory_order_relaxed);
  st->end = end;
  st->grain = grain;
  st->body = body;

  auto run_chunks = [](LoopState& s) {
    s.inflight.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      if (s.has_error.load(std::memory_order_acquire)) break;
      const std::int64_t lo =
          s.cursor.fetch_add(s.grain, std::memory_order_relaxed);
      if (lo >= s.end) break;
      const std::int64_t hi = std::min(lo + s.grain, s.end);
      try {
        s.body(lo, hi);
      } catch (...) {
        {
          std::lock_guard lk(s.err_mu);
          if (!s.error) s.error = std::current_exception();
        }
        s.has_error.store(true, std::memory_order_release);
        // Exhaust the cursor so no further chunk is claimed.
        s.cursor.store(s.end, std::memory_order_relaxed);
        break;
      }
      s.completed.fetch_add(hi - lo, std::memory_order_acq_rel);
    }
    s.inflight.fetch_sub(1, std::memory_order_acq_rel);
  };

  for (int i = 0; i < degree - 1; ++i) {
    enqueue([st, run_chunks] { run_chunks(*st); });
  }
  run_chunks(*st);  // master participates
  // A thrown chunk never counts toward `completed`, so an error always
  // lands in the second exit condition; waiting for inflight to drain
  // guarantees no participant is still inside the body when we rethrow
  // (queued-but-unstarted helpers bail on has_error without touching it).
  const std::int64_t total = end - begin;
  while (st->completed.load(std::memory_order_acquire) < total) {
    if (st->has_error.load(std::memory_order_acquire) &&
        st->inflight.load(std::memory_order_acquire) == 0) {
      break;
    }
    std::this_thread::yield();
  }
  if (st->has_error.load(std::memory_order_acquire)) {
    std::lock_guard lk(st->err_mu);
    std::rethrow_exception(st->error);
  }
}

}  // namespace cbe::native
