// Task vocabulary shared by the workload generators (synthetic and phylo),
// the Cell machine model, and the schedulers.
//
// A "task" is one off-loadable function call (newview / evaluate / makenewz
// in RAxML terms): it transfers inputs to an SPE's local store, computes, and
// transfers results back.  A task may contain a single parallelizable loop
// (the paper's LLP target); the loop descriptor carries enough cost structure
// for the work-sharing executor to split it across SPEs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cbe::task {

enum class KernelClass : std::uint8_t {
  Newview,   ///< conditional-likelihood update at an inner tree node
  Evaluate,  ///< log-likelihood at the virtual root (global reduction)
  Makenewz,  ///< Newton branch-length optimization (iterative)
  Generic,   ///< anything else (tests, examples)
};

const char* kernel_name(KernelClass k) noexcept;

/// The parallelizable for-loop enclosed in an off-loaded function.
struct LoopDesc {
  std::uint32_t iterations = 0;      ///< e.g. 228 alignment patterns (42_SC)
  double spe_cycles_per_iter = 0.0;  ///< optimized-SPE cycles per iteration
  double bytes_in_per_iter = 0.0;    ///< input fetched per iteration chunk
  double bytes_out_per_iter = 0.0;   ///< output committed per iteration chunk
  /// Master-side cycles to merge one worker's partial result (reductions).
  double reduction_cycles_per_worker = 0.0;

  bool parallelizable() const noexcept { return iterations > 1; }
  double total_cycles() const noexcept {
    return spe_cycles_per_iter * static_cast<double>(iterations);
  }
};

struct TaskDesc {
  KernelClass kind = KernelClass::Generic;
  std::uint16_t module_id = 0;   ///< code module that must reside in the LS
  double spe_cycles_nonloop = 0; ///< SPE cycles outside the parallel loop
  LoopDesc loop;                 ///< loop part (iterations == 0 if none)
  double ppe_cycles = 0;         ///< cost of the PPE fallback version
  double dma_in_bytes = 0;       ///< aggregate input transfer
  double dma_out_bytes = 0;      ///< aggregate output transfer

  /// Total SPE compute cycles when run unsplit on one SPE.
  double spe_cycles_total() const noexcept {
    return spe_cycles_nonloop + loop.total_cycles();
  }
};

/// One step of an MPI process: compute on the PPE, then off-load a task.
struct Segment {
  double ppe_burst_cycles = 0;  ///< PPE work preceding the off-load
  TaskDesc task;
};

/// The off-load stream of one bootstrap (one MPI process's unit of work).
struct ProcessTrace {
  std::vector<Segment> segments;

  double total_spe_cycles() const noexcept;
  double total_ppe_cycles() const noexcept;
};

/// A whole experiment: B independent bootstraps served master-worker style.
struct Workload {
  std::vector<ProcessTrace> bootstraps;

  std::size_t size() const noexcept { return bootstraps.size(); }
};

/// Registry of off-loadable code modules and their local-store footprints.
/// Module 0 is pre-registered as the merged RAxML kernel module (117 KB
/// sequential variant per the paper; the loop-parallel variant is slightly
/// larger).  Switching variants on an SPE costs a code DMA (Section 5.4).
class ModuleRegistry {
 public:
  struct CodeModule {
    std::string name;
    std::size_t bytes = 0;           ///< sequential (non-LLP) variant
    std::size_t parallel_bytes = 0;  ///< loop-parallel variant (0 = none)
  };

  ModuleRegistry();

  std::uint16_t add(CodeModule m);
  const CodeModule& get(std::uint16_t id) const;
  std::size_t count() const noexcept { return modules_.size(); }

  static constexpr std::uint16_t kRaxmlModule = 0;

 private:
  std::vector<CodeModule> modules_;
};

}  // namespace cbe::task
