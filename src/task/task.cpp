#include "task/task.hpp"

#include <stdexcept>

namespace cbe::task {

const char* kernel_name(KernelClass k) noexcept {
  switch (k) {
    case KernelClass::Newview: return "newview";
    case KernelClass::Evaluate: return "evaluate";
    case KernelClass::Makenewz: return "makenewz";
    default: return "generic";
  }
}

double ProcessTrace::total_spe_cycles() const noexcept {
  double s = 0.0;
  for (const auto& seg : segments) s += seg.task.spe_cycles_total();
  return s;
}

double ProcessTrace::total_ppe_cycles() const noexcept {
  double s = 0.0;
  for (const auto& seg : segments) s += seg.ppe_burst_cycles;
  return s;
}

ModuleRegistry::ModuleRegistry() {
  // Paper, Section 5.1: the three ML functions merged into one module of
  // 117 KB; the variant with parallelized loops is a few KB larger.
  modules_.push_back({"raxml_kernels", 117 * 1024, 123 * 1024});
}

std::uint16_t ModuleRegistry::add(CodeModule m) {
  modules_.push_back(std::move(m));
  return static_cast<std::uint16_t>(modules_.size() - 1);
}

const ModuleRegistry::CodeModule& ModuleRegistry::get(std::uint16_t id) const {
  if (id >= modules_.size()) {
    throw std::out_of_range("ModuleRegistry: bad module id");
  }
  return modules_[id];
}

}  // namespace cbe::task
