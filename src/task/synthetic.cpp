#include "task/synthetic.hpp"

#include "util/rng.hpp"

namespace cbe::task {

namespace {

// Kernel-time shares from the paper's gprof profile (Section 5.1),
// renormalized over the three off-loaded functions.
constexpr double kNewviewShare = 0.768 / 0.9877;
constexpr double kMakenewzShare = 0.196 / 0.9877;

KernelClass draw_kind(util::Rng& rng) {
  const double u = rng.uniform();
  if (u < kNewviewShare) return KernelClass::Newview;
  if (u < kNewviewShare + kMakenewzShare) return KernelClass::Makenewz;
  return KernelClass::Evaluate;
}

}  // namespace

Workload make_synthetic(int bootstraps, const SyntheticConfig& cfg) {
  Workload wl;
  wl.bootstraps.reserve(static_cast<std::size_t>(bootstraps));
  util::Rng master(cfg.seed);

  const double cycles_per_us = cfg.clock_ghz * 1e3;

  for (int b = 0; b < bootstraps; ++b) {
    util::Rng rng = master.split();
    ProcessTrace trace;
    trace.segments.reserve(static_cast<std::size_t>(cfg.tasks_per_bootstrap));
    for (int t = 0; t < cfg.tasks_per_bootstrap; ++t) {
      Segment seg;
      seg.ppe_burst_cycles =
          rng.lognormal_mean_cv(cfg.mean_ppe_burst_us, cfg.duration_cv) *
          cycles_per_us;

      TaskDesc& task = seg.task;
      task.kind = draw_kind(rng);
      task.module_id = ModuleRegistry::kRaxmlModule;

      const double spe_cycles =
          rng.lognormal_mean_cv(cfg.mean_spe_task_us, cfg.duration_cv) *
          cycles_per_us;
      const double loop_cycles = spe_cycles * cfg.loop_fraction;
      task.spe_cycles_nonloop = spe_cycles - loop_cycles;
      task.loop.iterations = cfg.loop_iterations;
      task.loop.spe_cycles_per_iter =
          loop_cycles / static_cast<double>(cfg.loop_iterations);
      task.loop.bytes_in_per_iter =
          cfg.dma_in_bytes / static_cast<double>(cfg.loop_iterations);
      task.loop.bytes_out_per_iter =
          cfg.dma_out_bytes / static_cast<double>(cfg.loop_iterations);
      // Reductions exist in the loops of all three kernels (Section 5.3
      // notes "many of the loops have global reductions"); evaluate's sum is
      // the canonical example.
      task.loop.reduction_cycles_per_worker = cfg.reduction_cycles;

      task.ppe_cycles = spe_cycles * cfg.ppe_over_spe;
      task.dma_in_bytes = cfg.dma_in_bytes;
      task.dma_out_bytes = cfg.dma_out_bytes;

      trace.segments.push_back(seg);
    }
    wl.bootstraps.push_back(std::move(trace));
  }
  return wl;
}

double expected_bootstrap_seconds(const SyntheticConfig& cfg) {
  const double per_task_us = cfg.mean_spe_task_us + cfg.mean_ppe_burst_us;
  return per_task_us * 1e-6 * static_cast<double>(cfg.tasks_per_bootstrap);
}

}  // namespace cbe::task
