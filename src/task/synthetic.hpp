// Synthetic workload generator calibrated to the paper's published RAxML
// statistics for the 42_SC input, used by the table/figure benches so the
// scheduler experiments run against exactly the task-stream shape the paper
// reports:
//   - average off-loaded task duration 96 us on an SPE (Section 5.2),
//   - average PPE burst between consecutive off-loads 11 us,
//   - ~90 % of one bootstrap spent in off-loaded kernels,
//   - kernel time split newview 76.8 % / makenewz 19.6 % / evaluate 2.4 %
//     (Section 5.1 gprof profile),
//   - each kernel encloses one parallelizable loop of 228 iterations
//     (the 42_SC pattern count, Section 5.3).
#pragma once

#include <cstdint>

#include "task/task.hpp"

namespace cbe::task {

struct SyntheticConfig {
  /// Off-loads per bootstrap.  The paper's real count at 96 us/task is
  /// ~267,000 (28.46 s x 90 % / 96 us); the default is scaled down so bench
  /// sweeps finish quickly.  Scheduler *ratios* are granularity-driven and
  /// unaffected; pass --tasks to benches for full fidelity.
  int tasks_per_bootstrap = 1000;
  double mean_spe_task_us = 96.0;
  double mean_ppe_burst_us = 11.0;
  double duration_cv = 0.30;       ///< lognormal jitter on task durations
  double loop_fraction = 0.90;     ///< share of SPE cycles inside the loop
  std::uint32_t loop_iterations = 228;
  double ppe_over_spe = 1.35;      ///< PPE-fallback slowdown vs optimized SPE
  /// Conditional-likelihood vectors streamed per call: 228 patterns x 4
  /// rate categories x 4 states x 8 bytes is ~29 KB per vector; newview
  /// reads two and writes one.
  double dma_in_bytes = 64.0 * 1024.0;
  double dma_out_bytes = 32.0 * 1024.0;
  double reduction_cycles = 220.0; ///< master merge cost per worker (evaluate
                                   ///< and makenewz carry global reductions)
  double clock_ghz = 3.2;
  std::uint64_t seed = 42;
};

/// Generates `bootstraps` independent process traces.  Each bootstrap gets a
/// per-process RNG stream derived from the seed, so workloads are identical
/// across scheduler runs (paired comparisons) yet internally jittered.
Workload make_synthetic(int bootstraps, const SyntheticConfig& cfg = {});

/// Expected single-SPE execution time of one synthetic bootstrap in seconds
/// (PPE bursts + SPE tasks, no overheads); used by tests as a sanity anchor.
double expected_bootstrap_seconds(const SyntheticConfig& cfg);

}  // namespace cbe::task
