// Structured execution tracing (see DESIGN.md "Observability").
//
// Every layer of the stack emits typed events through the CBE_TRACE_EVENT
// macro into an *ambient* per-thread TraceSink.  The simulator is
// single-threaded per run, so installing a sink around run_workload captures
// a totally ordered, deterministic event stream: same seed + config produces
// a bit-identical trace, which is what makes traces usable as golden
// regression fixtures (tests/golden/).
//
// The native thread pool records through a ConcurrentTraceSink instead: each
// worker owns a single-writer buffer (no locking on the record path; the
// registration of a new thread's buffer is the only synchronized step).
//
// Tracing compiles out entirely with -DCBE_TRACE=OFF: CBE_TRACE_EVENT
// expands to nothing and the hot paths carry zero tracing code.  When
// compiled in but no sink is installed, the cost is one thread-local load
// and branch per site.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#ifndef CBE_TRACE_ENABLED
#define CBE_TRACE_ENABLED 1
#endif

namespace cbe::trace {

/// Every event the stack can emit.  The payload fields `a`/`b` are
/// per-kind (documented in DESIGN.md "Observability: event schema"); all
/// payloads are integers so the text export is bit-reproducible.
enum class EventKind : std::uint8_t {
  TaskDispatch,   ///< spe=master, pid, a=bootstrap, b=loop degree
  TaskComplete,   ///< spe=master, pid, a=bootstrap
  TaskQueued,     ///< spe=-1, pid (no idle SPE; dispatch parked)
  PpeFallback,    ///< spe=-1, pid, a=task kind, b=1 if fault-recovery path
  DmaIssue,       ///< spe, pid=dma id, a=bytes, b=chunks
  DmaRetire,      ///< spe, pid=dma id, a=ok
  DmaFault,       ///< spe, pid=oracle index, a=bytes (transient failure)
  EibStall,       ///< spe, pid=dma id, a=congestion, b=stall ns
  CodeLoad,       ///< spe, pid=module id, a=bytes, b=variant
  MailboxSignal,  ///< spe, a=latency ns (one-way PPE<->SPE signal)
  CtxSwitch,      ///< spe=context, pid=new holder, a=previous holder,
                  ///< b=switch cost ns
  SpeBusy,        ///< spe (reservation begins)
  SpeIdle,        ///< spe (reservation released)
  LoopFork,       ///< spe=master, a=degree, b=iterations
  LoopJoin,       ///< spe=master, a=master idle ns, b=worker wait ns
  ChunkReassign,  ///< spe=lost worker, a=iterations moved to the master
  DegreeChange,   ///< a=new MGPS degree, b=observed TLP degree U
  FaultFailStop,  ///< spe (fail-stop applied)
  FaultDegrade,   ///< spe, a=derate factor in parts-per-million
  WatchdogFire,   ///< spe=master, pid, a=attempt id
  Reoffload,      ///< spe=-1, pid, a=retry count
  EngineDrain,    ///< a=events processed, b=events still pending
  // -- Job-service events (src/jobsvc; spe = blade id, pid = job id) -------
  JobSubmit,      ///< spe=-1, pid=job, a=tenant, b=priority
  JobAdmit,       ///< spe=-1, pid=job, a=tenant, b=queue depth after admit
  JobReject,      ///< spe=-1, pid=job, a=tenant, b=reason (AdmissionDecision)
  JobShed,        ///< spe=-1, pid=shed job, a=tenant, b=displacing job
  JobDispatch,    ///< spe=blade, pid=job, a=attempt, b=steps already done
  JobCheckpoint,  ///< spe=blade, pid=job, a=steps done, b=snapshot bytes
  JobFail,        ///< spe=blade, pid=job, a=attempt, b=reason (FailReason)
  JobRetry,       ///< spe=-1, pid=job, a=attempt, b=backoff ns
  JobMigrate,     ///< spe=new blade (-1 while queued), pid=job,
                  ///< a=lost blade, b=steps restored from the snapshot
  JobComplete,    ///< spe=blade, pid=job, a=attempt, b=latency ns
  BladeFail,      ///< spe=blade, a=jobs in flight, b=1 fail-stop / 0 degrade
  BreakerOpen,    ///< spe=blade, a=consecutive failures, b=cooloff ns
  BreakerClose,   ///< spe=blade (half-open probe succeeded)
  // -- Data-integrity events (ISSUE 9) -------------------------------------
  DmaCorrupt,     ///< spe, pid=oracle index, a=bytes (payload flip injected)
  ResultCorrupt,  ///< spe, pid, a=injected (1) or detected-by-reexec (2),
                  ///< b=oracle index
  Quarantine,     ///< spe (or blade), a=corruptions detected, b=threshold
  kCount
};

/// Stable short name used by both exporters (and the golden text format).
/// constexpr so coverage is checked at compile time: a kind added without a
/// name fails the static_assert below instead of printing "unknown" into
/// goldens.
constexpr const char* event_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::TaskDispatch: return "task_dispatch";
    case EventKind::TaskComplete: return "task_complete";
    case EventKind::TaskQueued: return "task_queued";
    case EventKind::PpeFallback: return "ppe_fallback";
    case EventKind::DmaIssue: return "dma_issue";
    case EventKind::DmaRetire: return "dma_retire";
    case EventKind::DmaFault: return "dma_fault";
    case EventKind::EibStall: return "eib_stall";
    case EventKind::CodeLoad: return "code_load";
    case EventKind::MailboxSignal: return "mailbox";
    case EventKind::CtxSwitch: return "ctx_switch";
    case EventKind::SpeBusy: return "spe_busy";
    case EventKind::SpeIdle: return "spe_idle";
    case EventKind::LoopFork: return "loop_fork";
    case EventKind::LoopJoin: return "loop_join";
    case EventKind::ChunkReassign: return "chunk_reassign";
    case EventKind::DegreeChange: return "degree_change";
    case EventKind::FaultFailStop: return "fault_failstop";
    case EventKind::FaultDegrade: return "fault_degrade";
    case EventKind::WatchdogFire: return "watchdog_fire";
    case EventKind::Reoffload: return "reoffload";
    case EventKind::EngineDrain: return "engine_drain";
    case EventKind::JobSubmit: return "job_submit";
    case EventKind::JobAdmit: return "job_admit";
    case EventKind::JobReject: return "job_reject";
    case EventKind::JobShed: return "job_shed";
    case EventKind::JobDispatch: return "job_dispatch";
    case EventKind::JobCheckpoint: return "job_ckpt";
    case EventKind::JobFail: return "job_fail";
    case EventKind::JobRetry: return "job_retry";
    case EventKind::JobMigrate: return "job_migrate";
    case EventKind::JobComplete: return "job_complete";
    case EventKind::BladeFail: return "blade_fail";
    case EventKind::BreakerOpen: return "breaker_open";
    case EventKind::BreakerClose: return "breaker_close";
    case EventKind::DmaCorrupt: return "dma_corrupt";
    case EventKind::ResultCorrupt: return "result_corrupt";
    case EventKind::Quarantine: return "quarantine";
    case EventKind::kCount: break;
  }
  return "unknown";
}

namespace detail {
/// Every kind below kCount must have a real, pairwise-distinct name.
constexpr bool all_event_kinds_named() {
  constexpr int n = static_cast<int>(EventKind::kCount);
  for (int i = 0; i < n; ++i) {
    const std::string_view name = event_name(static_cast<EventKind>(i));
    if (name == "unknown") return false;
    for (int j = 0; j < i; ++j) {
      if (name == event_name(static_cast<EventKind>(j))) return false;
    }
  }
  return true;
}
}  // namespace detail
static_assert(detail::all_event_kinds_named(),
              "every EventKind up to kCount needs a unique event_name() "
              "entry (exporters and the text-trace parser rely on it)");

/// Inverse of event_name; returns kCount when `name` matches no kind.
EventKind event_kind_from_name(std::string_view name) noexcept;

// -- Causal spans -------------------------------------------------------------
//
// A span is a 64-bit causal identity threaded through trace events so the
// analyzer can pull one job's cross-component critical path out of a
// multi-tenant stream.  The taxonomy mirrors the recovery machinery:
//
//   job      which logical job (jobsvc job id, or driver bootstrap id)
//   attempt  retry/attempt generation within that job
//   hop      migration hop (blade-kill / quarantine recoveries so far)
//   task     offload task within the attempt (step index, task pid)
//
// Packing: bits 63..32 = job + 1 (so every tagged span is nonzero and 0
// means "untagged"), 31..24 = attempt, 23..16 = hop, 15..0 = task.  The
// narrow fields saturate instead of wrapping into their neighbours.
//
// The current span is ambient per-thread state, exactly like the current
// sink: installers use ScopedSpan and every record() site picks it up
// automatically, so instrumented code never threads span arguments around.

constexpr std::uint64_t kNoSpan = 0;

constexpr std::uint64_t make_span(std::uint64_t job, std::uint64_t attempt,
                                  std::uint64_t hop,
                                  std::uint64_t task) noexcept {
  const std::uint64_t j = job < 0xffffffffull ? job + 1 : 0xffffffffull;
  const std::uint64_t at = attempt < 0xffull ? attempt : 0xffull;
  const std::uint64_t h = hop < 0xffull ? hop : 0xffull;
  const std::uint64_t t = task < 0xffffull ? task : 0xffffull;
  return (j << 32) | (at << 24) | (h << 16) | t;
}

struct SpanParts {
  std::uint32_t job = 0;
  std::uint32_t attempt = 0;
  std::uint32_t hop = 0;
  std::uint32_t task = 0;
  bool valid = false;  ///< false when unpacked from kNoSpan
};

constexpr SpanParts span_parts(std::uint64_t span) noexcept {
  SpanParts p;
  if (span == kNoSpan) return p;
  p.job = static_cast<std::uint32_t>((span >> 32) - 1);
  p.attempt = static_cast<std::uint32_t>((span >> 24) & 0xff);
  p.hop = static_cast<std::uint32_t>((span >> 16) & 0xff);
  p.task = static_cast<std::uint32_t>(span & 0xffff);
  p.valid = true;
  return p;
}

/// The calling thread's ambient span (kNoSpan when none installed).
std::uint64_t current_span() noexcept;
/// Installs `span` as the ambient span; returns the previous one.
std::uint64_t set_current_span(std::uint64_t span) noexcept;

/// RAII installation of an ambient span (restores the previous on exit).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::uint64_t span) : prev_(set_current_span(span)) {}
  ScopedSpan(std::uint64_t job, std::uint64_t attempt, std::uint64_t hop,
             std::uint64_t task)
      : ScopedSpan(make_span(job, attempt, hop, task)) {}
  ~ScopedSpan() { set_current_span(prev_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::uint64_t prev_;
};

struct Event {
  std::int64_t t_ns = 0;  ///< simulated ns (or steady-clock ns natively)
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int32_t pid = -1;
  std::int16_t spe = -1;
  EventKind kind = EventKind::TaskDispatch;
  std::uint64_t span = kNoSpan;  ///< causal span id (see make_span)
};

/// Single-writer event recorder.  The simulator installs one as the ambient
/// sink for the duration of a run; the golden tests snapshot its contents.
/// record() is virtual so bounded recorders (trace::FlightRecorder) can be
/// installed anywhere a TraceSink* is accepted.
class TraceSink {
 public:
  TraceSink() = default;
  virtual ~TraceSink() = default;
  // Movable (tests return sinks by value); copying a polymorphic sink would
  // slice derived state, so it stays deleted.
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  TraceSink(TraceSink&&) = default;
  TraceSink& operator=(TraceSink&&) = default;

  virtual void record(std::int64_t t_ns, EventKind kind, int spe, int pid,
                      std::int64_t a = 0, std::int64_t b = 0) {
    events_.push_back(Event{t_ns, a, b, pid, static_cast<std::int16_t>(spe),
                            kind, current_span()});
  }

  const std::vector<Event>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }
  bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Number of recorded events of `kind`.
  std::uint64_t count(EventKind kind) const noexcept;

 private:
  std::vector<Event> events_;
};

/// The calling thread's ambient sink (null when none installed).
TraceSink* current() noexcept;
/// Installs `sink` as the ambient sink; returns the previous one.
TraceSink* set_current(TraceSink* sink) noexcept;

/// RAII installation of an ambient sink (restores the previous on exit).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSink* sink) : prev_(set_current(sink)) {}
  ~ScopedTrace() { set_current(prev_); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink* prev_;
};

/// Multi-threaded recorder for the native pool: each writer thread attaches
/// once and then records into its own buffer without synchronization.
/// drain() merges all buffers sorted by timestamp (record order within one
/// thread is preserved by a per-buffer sequence).
class ConcurrentTraceSink {
 public:
  ConcurrentTraceSink();
  ~ConcurrentTraceSink();
  ConcurrentTraceSink(const ConcurrentTraceSink&) = delete;
  ConcurrentTraceSink& operator=(const ConcurrentTraceSink&) = delete;

  class Buffer {
   public:
    void record(std::int64_t t_ns, EventKind kind, int spe, int pid,
                std::int64_t a = 0, std::int64_t b = 0) {
      events_.push_back(Event{t_ns, a, b, pid,
                              static_cast<std::int16_t>(spe), kind,
                              current_span()});
    }

   private:
    friend class ConcurrentTraceSink;
    std::vector<Event> events_;
  };

  /// Registers a new single-writer buffer; call once per writer thread and
  /// keep the pointer.  It stays valid for the sink's lifetime and must only
  /// be used from the attaching thread.
  Buffer* attach();

  /// Merges every thread's events, sorted by timestamp (stable across
  /// buffers in attach order).  Safe to call while writers are quiescent.
  std::vector<Event> drain() const;

  std::size_t threads_attached() const noexcept;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace cbe::trace

#if CBE_TRACE_ENABLED
/// Records an event into the ambient sink, if one is installed.  `t_ns` is
/// evaluated only when a sink is present.
#define CBE_TRACE_EVENT(t_ns, kind, spe, pid, a, b)                       \
  do {                                                                    \
    if (::cbe::trace::TraceSink* cbe_trace_sink_ = ::cbe::trace::current()) \
      cbe_trace_sink_->record((t_ns), (kind), (spe), (pid), (a), (b));    \
  } while (0)
/// Compiles `stmt` in only when tracing is built; used for trace-only
/// bookkeeping that should vanish from the hot path with CBE_TRACE=OFF.
#define CBE_TRACE_ONLY(stmt) stmt
#else
#define CBE_TRACE_EVENT(t_ns, kind, spe, pid, a, b) ((void)0)
#define CBE_TRACE_ONLY(stmt) ((void)0)
#endif
