#include "trace/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace cbe::trace {

void Histogram::observe(double v) {
  std::lock_guard lock(mu_);
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

std::uint64_t Histogram::count() const {
  std::lock_guard lock(mu_);
  return samples_.size();
}

double Histogram::sum() const {
  std::lock_guard lock(mu_);
  return sum_;
}

double Histogram::min() const { return percentile(0.0); }

double Histogram::max() const { return percentile(100.0); }

double Histogram::mean() const {
  std::lock_guard lock(mu_);
  return samples_.empty() ? 0.0
                          : sum_ / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) const {
  std::lock_guard lock(mu_);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  // Nearest rank: the ceil(p/100 * n)-th smallest sample, 1-based.
  const auto n = static_cast<double>(samples_.size());
  auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (rank < 1) rank = 1;
  return samples_[rank - 1];
}

void Histogram::reset() {
  std::lock_guard lock(mu_);
  samples_.clear();
  sum_ = 0.0;
  sorted_ = true;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

void append_number(std::string& out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(v) ? v : 0.0);
  }
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": ";
    append_number(out, g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h->count());
    out += ", \"sum\": ";
    append_number(out, h->sum());
    out += ", \"min\": ";
    append_number(out, h->min());
    out += ", \"max\": ";
    append_number(out, h->max());
    out += ", \"p50\": ";
    append_number(out, h->percentile(50.0));
    out += ", \"p90\": ";
    append_number(out, h->percentile(90.0));
    out += ", \"p99\": ";
    append_number(out, h->percentile(99.0));
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace cbe::trace
