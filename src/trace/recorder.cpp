#include "trace/recorder.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

#include "trace/export.hpp"
#include "util/log.hpp"

namespace cbe::trace {

// One single-writer ring.  `head` counts every record by the owning thread;
// slot i of event n lives at n % capacity.  The writer stores the slot, then
// release-stores head; readers acquire head and copy only published slots.
struct FlightRecorder::Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<Event> slots;
  std::atomic<std::uint64_t> head{0};
};

struct FlightRecorder::Impl {
  mutable std::mutex mu;  ///< guards `rings` registration only
  std::vector<std::unique_ptr<Ring>> rings;
};

// Thread-local attach cache: one ring per (thread, recorder) pair.  Keyed by
// the recorder pointer so a thread recording into a second recorder (tests)
// re-attaches instead of writing into the wrong ring.  Nested inside the
// class via this struct so it can name the private Ring type.
struct FlightRecorder::TlsAttach {
  const void* owner = nullptr;
  Ring* ring = nullptr;
  static TlsAttach& self() {
    thread_local TlsAttach tls;
    return tls;
  }
};

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity < 16 ? 16 : capacity), impl_(new Impl) {}

FlightRecorder::~FlightRecorder() {
  TlsAttach& tls = TlsAttach::self();
  if (tls.owner == this) tls = TlsAttach{};
  if (installed_flight_recorder() == this) {
    install_flight_recorder(nullptr, "");
  }
  delete impl_;
}

FlightRecorder::Ring* FlightRecorder::ring_for_this_thread() {
  TlsAttach& tls = TlsAttach::self();
  if (tls.owner == this) return tls.ring;
  std::lock_guard lock(impl_->mu);
  impl_->rings.push_back(std::make_unique<Ring>(capacity_));
  tls = TlsAttach{this, impl_->rings.back().get()};
  return tls.ring;
}

void FlightRecorder::record(std::int64_t t_ns, EventKind kind, int spe,
                            int pid, std::int64_t a, std::int64_t b) {
  Ring* r = ring_for_this_thread();
  const std::uint64_t h = r->head.load(std::memory_order_relaxed);
  r->slots[static_cast<std::size_t>(h % capacity_)] =
      Event{t_ns, a, b, pid, static_cast<std::int16_t>(spe), kind,
            current_span()};
  r->head.store(h + 1, std::memory_order_release);
}

std::vector<Event> FlightRecorder::tail() const {
  std::vector<Event> out;
  {
    std::lock_guard lock(impl_->mu);
    for (const auto& r : impl_->rings) {
      const std::uint64_t h = r->head.load(std::memory_order_acquire);
      const std::uint64_t n =
          h < capacity_ ? h : static_cast<std::uint64_t>(capacity_);
      out.reserve(out.size() + n);
      for (std::uint64_t i = h - n; i < h; ++i) {
        out.push_back(r->slots[static_cast<std::size_t>(i % capacity_)]);
      }
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& x, const Event& y) {
    return x.t_ns < y.t_ns;
  });
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  std::lock_guard lock(impl_->mu);
  std::uint64_t n = 0;
  for (const auto& r : impl_->rings) {
    n += r->head.load(std::memory_order_acquire);
  }
  return n;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::lock_guard lock(impl_->mu);
  std::uint64_t lost = 0;
  for (const auto& r : impl_->rings) {
    const std::uint64_t h = r->head.load(std::memory_order_acquire);
    if (h > capacity_) lost += h - capacity_;
  }
  return lost;
}

std::size_t FlightRecorder::threads_attached() const {
  std::lock_guard lock(impl_->mu);
  return impl_->rings.size();
}

// -- Process-wide crash-dump registration ------------------------------------

namespace {
std::mutex g_dump_mu;
FlightRecorder* g_recorder = nullptr;
std::string g_dump_path;
int g_dump_budget = 0;
std::atomic<std::uint64_t> g_dumps_written{0};
}  // namespace

void install_flight_recorder(FlightRecorder* rec, std::string dump_path,
                             int max_dumps) {
  std::lock_guard lock(g_dump_mu);
  g_recorder = rec;
  g_dump_path = std::move(dump_path);
  g_dump_budget = rec != nullptr ? max_dumps : 0;
}

FlightRecorder* installed_flight_recorder() noexcept {
  std::lock_guard lock(g_dump_mu);
  return g_recorder;
}

std::string flight_dump_text(const FlightRecorder& rec,
                             const std::vector<Event>& events,
                             const char* reason) {
  // Header first so the strict parser accepts the file; the annotation rides
  // in a comment line the parser skips.
  std::string out = "# cbe-trace v1\n";
  out += "# flight-recorder reason=" + std::string(reason) +
         " recorded=" + std::to_string(rec.recorded()) +
         " overwritten=" + std::to_string(rec.overwritten()) +
         " capacity=" + std::to_string(rec.capacity()) +
         " threads=" + std::to_string(rec.threads_attached()) + "\n";
  const std::string body = to_text(events);
  // to_text emits its own header line; keep only the event lines.
  const std::size_t nl = body.find('\n');
  out += nl == std::string::npos ? body : body.substr(nl + 1);
  return out;
}

bool dump_flight_recorder(const char* reason, bool force) noexcept {
  FlightRecorder* rec = nullptr;
  std::string path;
  {
    std::lock_guard lock(g_dump_mu);
    if (g_recorder == nullptr || g_dump_path.empty()) return false;
    if (!force) {
      if (g_dump_budget <= 0) return false;
      --g_dump_budget;
    }
    rec = g_recorder;
    path = g_dump_path;
  }
  try {
    const std::string text = flight_dump_text(*rec, rec->tail(), reason);
    if (!write_file(path, text)) return false;
    g_dumps_written.fetch_add(1, std::memory_order_relaxed);
    CBE_LOG_C(Info, "trace", "flight-recorder dump (%s) written to %s",
              reason, path.c_str());
    return true;
  } catch (...) {
    return false;  // a dump must never turn a crash into a different crash
  }
}

std::uint64_t flight_dumps_written() noexcept {
  return g_dumps_written.load(std::memory_order_relaxed);
}

}  // namespace cbe::trace
