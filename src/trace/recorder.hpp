// Always-on flight recorder (DESIGN.md §12 "Live observability").
//
// A FlightRecorder is a TraceSink whose storage is a set of bounded,
// per-thread ring buffers instead of an unbounded vector: the record path is
// one thread-local lookup, one array store, and one release store of the
// ring head — no locks, no allocation after attach — so it is cheap enough
// to leave installed for the whole life of a long-running service.  When a
// ring fills, the oldest events are overwritten (never the newest): the
// recorder always holds the causal *tail* of what just happened, which is
// exactly what a crash report needs.
//
// Memory model (the TSan suite pins this):
//   - each ring has exactly one writer, the thread that attached it; the
//     writer stores the slot first, then publishes with a release store of
//     the head counter;
//   - tail() acquires every head once and copies only published slots, so a
//     quiescent-writer snapshot is race-free and per-thread order-exact;
//   - a snapshot taken while writers are still recording (the crash path)
//     may observe a slot mid-overwrite — a torn *oldest* event, never a torn
//     newest one, and never a crash.  Crash dumps accept that bargain.
//
// Dumping: install_flight_recorder() registers a process-wide recorder plus
// a dump path; dump_flight_recorder(reason) writes the merged tail as a
// `# cbe-trace v1` text file (strict-parser compatible — the reason and the
// loss counters ride in `#` comment lines), so every crash artifact feeds
// straight into cell_profiler.  Dump sites: the --die-at-event crash clock
// (via sim::set_crash_clock_hook), jobsvc quarantine/watchdog paths, and
// nonzero-exit paths in the example binaries.  Dumps are rate-limited per
// process; the crash clock's dump bypasses the limit (`force`) because the
// final dump is the one that matters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace cbe::trace {

class FlightRecorder final : public TraceSink {
 public:
  /// `capacity` is events *per attached thread*; at least 16.
  explicit FlightRecorder(std::size_t capacity = 4096);
  ~FlightRecorder() override;

  void record(std::int64_t t_ns, EventKind kind, int spe, int pid,
              std::int64_t a = 0, std::int64_t b = 0) override;

  /// Merged snapshot of every thread's surviving events, sorted by
  /// timestamp (stable across rings in attach order).  Exact when writers
  /// are quiescent; best-effort (possibly one torn oldest event per ring)
  /// when taken mid-flight, as a crash dump is.
  std::vector<Event> tail() const;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded, across all threads.
  std::uint64_t recorded() const;
  /// Events lost to ring overwrite (recorded - still held).
  std::uint64_t overwritten() const;
  std::size_t threads_attached() const;

 private:
  struct Ring;
  struct TlsAttach;
  Ring* ring_for_this_thread();

  const std::size_t capacity_;
  struct Impl;
  Impl* impl_;
};

// -- Process-wide crash-dump registration ------------------------------------

/// Registers `rec` as the process's crash-dump recorder and `dump_path` as
/// its dump file.  Pass nullptr to unregister.  `max_dumps` bounds how many
/// non-forced dumps one process may write (each overwrites the file).
void install_flight_recorder(FlightRecorder* rec, std::string dump_path,
                             int max_dumps = 8);

/// The registered recorder, or nullptr.
FlightRecorder* installed_flight_recorder() noexcept;

/// Writes the registered recorder's tail to the registered path, tagged with
/// `reason`.  Returns false when no recorder is installed, the per-process
/// dump budget is exhausted (unless `force`), or the write fails.  Safe to
/// call from anywhere, including immediately before a SIGKILL.
bool dump_flight_recorder(const char* reason, bool force = false) noexcept;

/// Dumps written so far (for statusz and tests).
std::uint64_t flight_dumps_written() noexcept;

/// Renders `events` plus recorder loss counters as strict `# cbe-trace v1`
/// text with a `# flight-recorder ...` comment line.  Exposed for tests.
std::string flight_dump_text(const FlightRecorder& rec,
                             const std::vector<Event>& events,
                             const char* reason);

}  // namespace cbe::trace
