// Metrics: named counters, gauges and histograms collected during a run and
// exportable as JSON (see DESIGN.md "Observability").
//
// Thread-safety: counters and gauges are single atomics, histograms take a
// per-histogram mutex on observe, and the registry locks only on name
// lookup/creation — callers cache the returned references, so the native
// pool's workers never contend on the registry map itself.  All handles stay
// valid for the registry's lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cbe::trace {

/// Monotonic counter.  Increments wrap modulo 2^64 (unsigned overflow is
/// well-defined); reset() rearms it at zero.
class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Sample-storing histogram with nearest-rank percentiles: percentile(p)
/// returns the ceil(p/100 * n)-th smallest sample (the minimum for p <= 0,
/// the maximum for p >= 100).  Exact rather than bucketed — run-scale sample
/// counts here are small enough that storing them beats approximating.
class Histogram {
 public:
  void observe(double v);
  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const; ///< 0 when empty
  double percentile(double p) const;  ///< 0 when empty; p in [0, 100]
  void reset();

 private:
  mutable std::mutex mu_;
  mutable std::vector<double> samples_;  ///< sorted lazily by percentile()
  mutable bool sorted_ = true;
  double sum_ = 0.0;
};

/// Name -> metric map.  Get-or-create by name; names are reported in sorted
/// order by to_json() so exports are deterministic.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// One JSON object: counters as integers, gauges as numbers, histograms
  /// as {count, sum, min, max, p50, p90, p99}.
  std::string to_json() const;

  /// Resets every registered metric (the metrics stay registered).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cbe::trace
