// Trace exporters: a compact deterministic text format for golden-file
// diffing, and Chrome trace_event JSON for chrome://tracing / Perfetto.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace cbe::trace {

/// Deterministic text: a `# cbe-trace v1` header then one line per event,
/// `<t_ns> <name> spe=<n> pid=<n> a=<n> b=<n>`.  Integers only, so equal
/// event streams produce bit-identical files on every platform.
std::string to_text(const std::vector<Event>& events);

/// Chrome trace_event JSON (the object form, {"traceEvents": [...]}).
/// Task and loop spans become duration events on tid = SPE id, DMAs become
/// async spans (they overlap compute on the same SPE), occupancy becomes a
/// "busy_spes" counter track, and everything else becomes instants.
std::string to_chrome_json(const std::vector<Event>& events);

/// Writes `content` to `path`; returns false (and logs) on failure.
bool write_file(const std::string& path, const std::string& content);

}  // namespace cbe::trace
