#include "trace/export.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>

#include "util/log.hpp"

namespace cbe::trace {

std::string to_text(const std::vector<Event>& events) {
  std::string out = "# cbe-trace v1\n";
  char line[192];
  for (const Event& e : events) {
    // The span field is optional on purpose: untagged events render exactly
    // as in format v1, so traces without spans stay byte-identical.
    if (e.span == kNoSpan) {
      std::snprintf(line, sizeof line,
                    "%" PRId64 " %s spe=%d pid=%d a=%" PRId64 " b=%" PRId64
                    "\n",
                    e.t_ns, event_name(e.kind), static_cast<int>(e.spe),
                    static_cast<int>(e.pid), e.a, e.b);
    } else {
      std::snprintf(line, sizeof line,
                    "%" PRId64 " %s spe=%d pid=%d a=%" PRId64 " b=%" PRId64
                    " s=%" PRIu64 "\n",
                    e.t_ns, event_name(e.kind), static_cast<int>(e.spe),
                    static_cast<int>(e.pid), e.a, e.b, e.span);
    }
    out += line;
  }
  return out;
}

namespace {

/// One trace_event JSON object.  `ts` is microseconds with ns precision.
void append_event(std::string& out, bool& first, const char* name,
                  const char* cat, char ph, std::int64_t t_ns, int tid,
                  const std::string& extra) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                "\"ts\":%" PRId64 ".%03d,\"pid\":0,\"tid\":%d",
                first ? "" : ",\n", name, cat, ph, t_ns / 1000,
                static_cast<int>(t_ns % 1000), tid);
  first = false;
  out += buf;
  out += extra;
  out += "}";
}

std::string args1(const char* k, std::int64_t v) {
  char buf[96];
  std::snprintf(buf, sizeof buf, ",\"args\":{\"%s\":%" PRId64 "}", k, v);
  return buf;
}

std::string args2(const char* k1, std::int64_t v1, const char* k2,
                  std::int64_t v2) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ",\"args\":{\"%s\":%" PRId64 ",\"%s\":%" PRId64 "}", k1, v1,
                k2, v2);
  return buf;
}

/// Synthetic tids for non-SPE tracks.
constexpr int kGlobalTid = 99;
constexpr int kPpeTidBase = 100;

/// Extra top-level field carrying the causal span id; viewers ignore
/// unknown keys, cell_profiler's JSON consumers can group by it.
std::string span_field(const Event& e) {
  if (e.span == kNoSpan) return "";
  return ",\"span\":" + std::to_string(e.span);
}

}  // namespace

std::string to_chrome_json(const std::vector<Event>& events) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  std::set<int> spe_tids;
  int busy = 0;
  for (const Event& e : events) {
    const int spe = e.spe;
    if (spe >= 0) spe_tids.insert(spe);
    switch (e.kind) {
      case EventKind::TaskDispatch:
        append_event(out, first, "task", "task", 'B', e.t_ns, spe,
                     args2("bootstrap", e.a, "degree", e.b) + span_field(e));
        break;
      case EventKind::TaskComplete:
        append_event(out, first, "task", "task", 'E', e.t_ns, spe,
                     span_field(e));
        break;
      case EventKind::LoopFork:
        append_event(out, first, "llp", "loop", 'B', e.t_ns, spe,
                     args2("degree", e.a, "iterations", e.b));
        break;
      case EventKind::LoopJoin:
        append_event(out, first, "llp", "loop", 'E', e.t_ns, spe, "");
        break;
      case EventKind::DmaIssue: {
        std::string extra = ",\"id\":" + std::to_string(e.pid) +
                            args2("bytes", e.a, "chunks", e.b);
        append_event(out, first, "dma", "dma", 'b', e.t_ns, spe, extra);
        break;
      }
      case EventKind::DmaRetire: {
        std::string extra = ",\"id\":" + std::to_string(e.pid);
        append_event(out, first, "dma", "dma", 'e', e.t_ns, spe, extra);
        break;
      }
      case EventKind::SpeBusy:
      case EventKind::SpeIdle:
        busy += e.kind == EventKind::SpeBusy ? 1 : -1;
        append_event(out, first, "busy_spes", "occupancy", 'C', e.t_ns,
                     kGlobalTid, args1("busy", busy));
        break;
      case EventKind::CtxSwitch:
        append_event(out, first, "ctx_switch", "ppe", 'i', e.t_ns,
                     kPpeTidBase + spe,
                     args2("to", e.pid, "from", e.a) + ",\"s\":\"t\"");
        break;
      case EventKind::MailboxSignal:
        append_event(out, first, "mailbox", "signal", 'i', e.t_ns, spe,
                     std::string(",\"s\":\"t\"") );
        break;
      default: {
        const int tid = spe >= 0 ? spe : kGlobalTid;
        append_event(out, first, event_name(e.kind), "runtime", 'i', e.t_ns,
                     tid,
                     args2("a", e.a, "b", e.b) + ",\"s\":\"g\"" +
                         span_field(e));
        break;
      }
    }
  }
  // Name the tracks so Perfetto shows "SPE n" instead of bare tids.
  for (int tid : spe_tids) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"SPE %d\"}}",
                  first ? "" : ",\n", tid, tid);
    first = false;
    out += buf;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    CBE_LOG_C(Error, "trace", "cannot open %s for writing: %s",
              path.c_str(), std::strerror(errno));
    return false;
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  if (n != content.size()) {
    // Capture the write error before fclose can clobber errno.
    CBE_LOG_C(Error, "trace", "short write to %s (%zu of %zu bytes): %s",
              path.c_str(), n, content.size(), std::strerror(errno));
    std::fclose(f);
    return false;
  }
  // fclose flushes the stdio buffer; a full disk often only surfaces here.
  if (std::fclose(f) != 0) {
    CBE_LOG_C(Error, "trace", "cannot flush %s: %s", path.c_str(),
              std::strerror(errno));
    return false;
  }
  return true;
}

}  // namespace cbe::trace
