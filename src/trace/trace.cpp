#include "trace/trace.hpp"

#include <algorithm>
#include <memory>
#include <mutex>

namespace cbe::trace {

EventKind event_kind_from_name(std::string_view name) noexcept {
  for (int i = 0; i < static_cast<int>(EventKind::kCount); ++i) {
    const auto k = static_cast<EventKind>(i);
    if (name == event_name(k)) return k;
  }
  return EventKind::kCount;
}

std::uint64_t TraceSink::count(EventKind kind) const noexcept {
  std::uint64_t n = 0;
  for (const Event& e : events_) n += e.kind == kind ? 1 : 0;
  return n;
}

namespace {
thread_local TraceSink* g_current = nullptr;
thread_local std::uint64_t g_current_span = kNoSpan;
}  // namespace

TraceSink* current() noexcept { return g_current; }

TraceSink* set_current(TraceSink* sink) noexcept {
  TraceSink* prev = g_current;
  g_current = sink;
  return prev;
}

std::uint64_t current_span() noexcept { return g_current_span; }

std::uint64_t set_current_span(std::uint64_t span) noexcept {
  const std::uint64_t prev = g_current_span;
  g_current_span = span;
  return prev;
}

struct ConcurrentTraceSink::Impl {
  mutable std::mutex mu;
  std::vector<std::unique_ptr<Buffer>> buffers;
};

ConcurrentTraceSink::ConcurrentTraceSink() : impl_(new Impl) {}

ConcurrentTraceSink::~ConcurrentTraceSink() { delete impl_; }

ConcurrentTraceSink::Buffer* ConcurrentTraceSink::attach() {
  std::lock_guard lock(impl_->mu);
  impl_->buffers.push_back(std::make_unique<Buffer>());
  return impl_->buffers.back().get();
}

std::vector<Event> ConcurrentTraceSink::drain() const {
  std::vector<Event> out;
  {
    std::lock_guard lock(impl_->mu);
    std::size_t total = 0;
    for (const auto& b : impl_->buffers) total += b->events_.size();
    out.reserve(total);
    for (const auto& b : impl_->buffers) {
      out.insert(out.end(), b->events_.begin(), b->events_.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Event& x, const Event& y) {
                     return x.t_ns < y.t_ns;
                   });
  return out;
}

std::size_t ConcurrentTraceSink::threads_attached() const noexcept {
  std::lock_guard lock(impl_->mu);
  return impl_->buffers.size();
}

}  // namespace cbe::trace
