// The runtime's adaptive idea on real host threads: a pool of workers
// ("SPEs") serves off-loaded tasks from a varying number of logical streams
// ("MPI processes"); the AdaptiveGovernor watches the off-load traffic and
// widens loop work-sharing exactly when task-level parallelism leaves
// workers idle.
//
//   build/examples/adaptive_offload [--workers=N]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "native/native_runtime.hpp"
#include "util/cli.hpp"

namespace {

/// A compute kernel with an inner parallelizable loop: numerically
/// integrates sum of sin over a range (stand-in for a likelihood loop).
double integrate(cbe::native::NativeRuntime& rt, int slices) {
  std::vector<double> partial(static_cast<std::size_t>(slices), 0.0);
  rt.parallel_for(0, slices, [&partial](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      double acc = 0.0;
      const double x0 = static_cast<double>(i) * 1e-3;
      for (int k = 0; k < 2000; ++k) {
        acc += std::sin(x0 + static_cast<double>(k) * 1e-6);
      }
      partial[static_cast<std::size_t>(i)] = acc;
    }
  }, /*grain=*/4);
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);
  const int workers = static_cast<int>(cli.get_int("workers", 4));
  native::NativeRuntime rt(workers);
  std::printf("pool: %d workers\n\n", rt.pool().workers());

  // Phase 1: many concurrent streams -> plenty of task-level parallelism,
  // the governor should keep loops sequential (degree 1).
  const auto phase = [&](const char* name, int streams, int tasks) {
    const auto t0 = std::chrono::steady_clock::now();
    double sink = 0.0;
    for (int round = 0; round < tasks; ++round) {
      std::vector<std::future<double>> futs;
      futs.reserve(static_cast<std::size_t>(streams));
      for (int s = 0; s < streams; ++s) {
        futs.push_back(rt.offload(s, [&rt] { return integrate(rt, 64); },
                                  streams));
      }
      for (auto& f : futs) sink += f.get();
    }
    const auto dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    std::printf("%-28s streams=%2d  ->  governor degree %d   (%.3fs, "
                "checksum %.3f)\n", name, streams, rt.governor().loop_degree(),
                dt, sink);
  };

  phase("phase 1: task-rich", 2 * workers, 6);
  phase("phase 2: scarce tasks", 1, 12);
  phase("phase 3: task-rich again", 2 * workers, 6);
  phase("phase 4: two streams", 2, 10);

  std::printf("\nWith many streams the governor keeps loops sequential; "
              "when streams dry up it activates work-sharing so idle "
              "workers help the remaining tasks (the MGPS policy of the "
              "paper, Section 5.4).\n");
  return 0;
}
