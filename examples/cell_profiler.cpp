// Trace analysis & performance attribution (see DESIGN.md "Analysis &
// attribution"): reconstructs per-SPE busy/idle timelines, attributes every
// nanosecond of the makespan to one component, extracts the critical path
// through the task graph, and audits each MGPS degree decision.
//
// Two input modes:
//   --input=<file>   analyze an existing deterministic text trace
//                    (cell_explorer --trace-text=F, or any `# cbe-trace v1`
//                    stream);
//   (default)        run a fixed-seed MGPS workload in-process and profile
//                    it.  --golden-faults pins the exact fault-scripted
//                    scenario the golden-trace tests use, so the report is
//                    reproducible down to the byte.
//
//   build/examples/cell_profiler [--input=F] [--span=JOB] [--report=text|json]
//       [--out=F] [--bootstraps=N] [--tasks=N] [--seed=S] [--fault-seed=S]
//       [--golden-faults]
//
// Traces that interleave several causal spans (a jobsvc run, a flight-
// recorder dump) carry events for many jobs at once; analyzing them as one
// timeline attributes job A's queueing to job B's critical path.  For such
// mixed traces --span=JOB selects one job's span family (keeping untagged
// global events like faults for context); omitting it on a mixed trace is
// an error that lists the job ids present.
//
// Exit codes: 0 ok, 1 I/O or analysis failure, 2 usage error.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/analysis.hpp"
#include "analysis/trace_parse.hpp"
#include "runtime/mgps.hpp"
#include "runtime/sim_runtime.hpp"
#include "task/synthetic.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"

namespace {

constexpr const char kUsage[] =
    "cell_profiler [--input=F] [--span=JOB] [--report=text|json] [--out=F]\n"
    "    [--bootstraps=N] [--tasks=N] [--seed=S] [--fault-seed=S]\n"
    "    [--golden-faults]";

/// Distinct job ids among span-tagged events (untagged events don't count).
std::set<std::uint32_t> span_jobs(const std::vector<cbe::trace::Event>& evs) {
  std::set<std::uint32_t> jobs;
  for (const cbe::trace::Event& e : evs) {
    const cbe::trace::SpanParts p = cbe::trace::span_parts(e.span);
    if (p.valid) jobs.insert(p.job);
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);
  const std::string input = cli.get("input", "");
  const bool span_given = cli.has("span");
  const std::uint32_t span_job =
      static_cast<std::uint32_t>(cli.get_int("span", 0));
  const std::string report = cli.get("report", "text");
  const std::string out_path = cli.get("out", "");
  const int bootstraps = static_cast<int>(cli.get_int("bootstraps", 2));
  const int tasks = static_cast<int>(cli.get_int("tasks", 20));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto fault_seed =
      static_cast<std::uint64_t>(cli.get_int("fault-seed", 2026));
  const bool golden_faults = cli.get_bool("golden-faults", false);
  if (report != "text" && report != "json") {
    std::fprintf(stderr, "--report must be text or json\nusage: %s\n",
                 kUsage);
    return 2;
  }
  cli.enforce_usage_or_exit(kUsage);

  std::vector<trace::Event> events;
  if (!input.empty()) {
    std::ifstream in(input, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cell_profiler: cannot open %s\n", input.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string err;
    if (!analysis::parse_text_trace(ss.str(), events, &err)) {
      std::fprintf(stderr, "cell_profiler: %s: %s\n", input.c_str(),
                   err.c_str());
      return 1;
    }
    const std::set<std::uint32_t> jobs = span_jobs(events);
    if (span_given) {
      if (!jobs.count(span_job)) {
        std::fprintf(stderr,
                     "cell_profiler: %s has no events for --span=%u\n",
                     input.c_str(), span_job);
        return 1;
      }
      // Keep the selected job's span family plus untagged global events
      // (faults, idle markers): they are shared context, not another job.
      events.erase(std::remove_if(events.begin(), events.end(),
                                  [span_job](const trace::Event& e) {
                                    const trace::SpanParts p =
                                        trace::span_parts(e.span);
                                    return p.valid && p.job != span_job;
                                  }),
                   events.end());
    } else if (jobs.size() > 1) {
      std::string list;
      std::size_t shown = 0;
      for (std::uint32_t j : jobs) {
        if (shown++ == 8) {
          list += ", ...";
          break;
        }
        if (!list.empty()) list += ", ";
        list += std::to_string(j);
      }
      std::fprintf(stderr,
                   "cell_profiler: %s is a mixed trace: events span %zu jobs "
                   "(%s); pass --span=JOB to pick one\n",
                   input.c_str(), jobs.size(), list.c_str());
      return 1;
    }
  } else {
#if CBE_TRACE_ENABLED
    // In-process profile of a fixed-seed MGPS run.  With --golden-faults
    // this is byte-for-byte the pinned golden-trace scenario: 2 bootstraps,
    // 20 tasks each, a scripted mid-run degrade on SPE 3 and a fail-stop of
    // SPE 5 (see tests/test_trace_golden.cpp).
    task::SyntheticConfig scfg;
    scfg.tasks_per_bootstrap = tasks;
    scfg.seed = seed;
    const task::Workload wl = task::make_synthetic(bootstraps, scfg);
    rt::RunConfig cfg;
    cfg.fault.seed = fault_seed;
    if (golden_faults) {
      cfg.fault_script = {
          {sim::Time::us(300.0), sim::FaultKind::Degrade, 3, 0.05},
          {sim::Time::ms(1.0), sim::FaultKind::FailStop, 5, 1.0},
      };
    }
    trace::TraceSink sink;
    cfg.trace = &sink;
    rt::MgpsPolicy mgps;
    rt::run_workload(wl, mgps, cfg);
    events = sink.events();
#else
    std::fprintf(stderr,
                 "cell_profiler: in-process profiling needs a CBE_TRACE=ON "
                 "build; pass --input=<trace> instead.\n");
    return 1;
#endif
  }

  const analysis::Analysis a = analysis::analyze(events);
  const std::string rendered =
      report == "json" ? analysis::to_json(a) : analysis::to_text(a);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else if (trace::write_file(out_path, rendered)) {
    std::printf("report written to %s\n", out_path.c_str());
  } else {
    return 1;
  }
  return 0;
}
