// Quickstart: simulate a RAxML-like workload on the Cell machine model
// under the four scheduling policies from the paper and compare makespans.
//
//   build/examples/quickstart [--bootstraps=N] [--tasks=M]
//
// Shows the core API loop: build a Workload, pick a SchedulerPolicy, call
// run_workload, read the RunResult.
#include <cstdio>
#include <vector>

#include "runtime/mgps.hpp"
#include "runtime/policy.hpp"
#include "runtime/sim_runtime.hpp"
#include "task/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);
  const int bootstraps = static_cast<int>(cli.get_int("bootstraps", 6));

  // 1. A workload: B independent bootstraps, each a stream of off-loadable
  //    tasks calibrated to the paper's RAxML statistics.
  task::SyntheticConfig scfg;
  scfg.tasks_per_bootstrap = static_cast<int>(cli.get_int("tasks", 500));
  const task::Workload workload = task::make_synthetic(bootstraps, scfg);

  // 2. A machine: one Cell BE (PPE + 8 SPEs) with default parameters.
  rt::RunConfig config;

  // 3. Policies: the Linux baseline, EDTLP, a static hybrid, and MGPS.
  rt::LinuxPolicy linux_policy;
  rt::EdtlpPolicy edtlp;
  rt::StaticHybridPolicy hybrid4(4);
  rt::MgpsPolicy mgps;

  util::Table table("Quickstart: " + std::to_string(bootstraps) +
                    " bootstraps on one simulated Cell BE");
  table.header({"policy", "makespan", "SPE util", "offloads",
                "avg loop degree", "ctx switches"});
  const std::vector<rt::SchedulerPolicy*> policies = {&linux_policy, &edtlp,
                                                      &hybrid4, &mgps};
  for (rt::SchedulerPolicy* policy : policies) {
    const rt::RunResult r = rt::run_workload(workload, *policy, config);
    table.row({policy->name(), util::Table::seconds(r.makespan_s),
               util::Table::num(r.mean_spe_utilization * 100, 1) + "%",
               std::to_string(r.offloads),
               util::Table::num(r.mean_loop_degree),
               std::to_string(r.ctx_switches)});
  }
  table.print();
  std::printf("\nMGPS adapts between task- and loop-level parallelism; with "
              "%d bootstraps it should match or beat the static policies.\n",
              bootstraps);
  return 0;
}
