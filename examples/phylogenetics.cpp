// A complete phylogenetic analysis with the phylo library, mirroring the
// paper's application workflow (Section 3.1): infer a best-known ML tree
// from multiple randomized searches, then run non-parametric bootstraps,
// and finally replay the bootstrap task streams through the simulated Cell
// under the MGPS scheduler.
//
//   build/examples/phylogenetics [--taxa=N] [--sites=L] [--inferences=K]
//                                [--bootstraps=B]
#include <cstdio>
#include <memory>

#include "phylo/bootstrap.hpp"
#include "phylo/support.hpp"
#include "phylo/search.hpp"
#include "runtime/mgps.hpp"
#include "runtime/sim_runtime.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);

  phylo::SyntheticAlignmentConfig acfg;
  acfg.taxa = static_cast<int>(cli.get_int("taxa", 20));
  acfg.sites = static_cast<int>(cli.get_int("sites", 600));
  acfg.mean_branch_length = 0.02;  // enough signal for interesting searches
  const int inferences = static_cast<int>(cli.get_int("inferences", 3));
  const int bootstraps = static_cast<int>(cli.get_int("bootstraps", 4));

  std::printf("Generating a synthetic DNA alignment (%d taxa x %d sites)"
              "...\n", acfg.taxa, acfg.sites);
  phylo::Alignment alignment = phylo::make_synthetic_alignment(acfg);
  phylo::PatternAlignment patterns(alignment);
  std::printf("  %d unique site patterns, base frequencies "
              "A=%.3f C=%.3f G=%.3f T=%.3f\n\n",
              patterns.patterns(), patterns.base_frequencies()[0],
              patterns.base_frequencies()[1], patterns.base_frequencies()[2],
              patterns.base_frequencies()[3]);

  phylo::SubstModel model(
      phylo::GtrParams::hky(2.5, patterns.base_frequencies()), 0.8);
  phylo::LikelihoodEngine engine(patterns, model);
  util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 2024)));

  // Multiple inferences from distinct randomized starting trees.
  std::printf("Running %d independent ML searches:\n", inferences);
  double best = -1e300;
  std::unique_ptr<phylo::Tree> best_tree;
  for (int i = 0; i < inferences; ++i) {
    phylo::SearchResult res = phylo::search(engine, rng);
    std::printf("  search %d: lnL = %.4f (%d NNI moves accepted)\n", i + 1,
                res.loglik, res.nni_accepted);
    if (res.loglik > best) {
      best = res.loglik;
      best_tree = std::make_unique<phylo::Tree>(std::move(res.tree));
    }
  }
  std::printf("best-known ML tree: lnL = %.4f\n%s\n\n", best,
              best_tree->newick().c_str());

  // Bootstrap replicates (with trace capture for the scheduler replay).
  std::printf("Running %d bootstrap replicates:\n", bootstraps);
  task::Workload workload = phylo::make_phylo_workload(
      patterns, model, bootstraps,
      static_cast<std::uint64_t>(cli.get_int("seed", 2024)) + 1);
  for (std::size_t b = 0; b < workload.bootstraps.size(); ++b) {
    const auto& trace = workload.bootstraps[b];
    std::printf("  replicate %zu: %zu off-loadable kernel calls, "
                "%.1f ms of SPE work\n", b + 1, trace.segments.size(),
                trace.total_spe_cycles() / 3.2e6);
  }

  // Bootstrap support for the best tree's internal branches (what the
  // replicates are *for*, Section 3.1).
  std::vector<phylo::Tree> replicate_trees;
  util::Rng boot_rng(static_cast<std::uint64_t>(cli.get_int("seed", 2024)) +
                     2);
  for (int b = 0; b < bootstraps; ++b) {
    replicate_trees.push_back(
        phylo::run_bootstrap(patterns, model, boot_rng).tree);
  }
  const auto support = phylo::branch_support(*best_tree, replicate_trees);
  const auto internal = best_tree->internal_edges();
  std::printf("\nbootstrap support of the best tree's internal branches:\n");
  for (std::size_t i = 0; i < support.size(); ++i) {
    std::printf("  branch %2d: %.0f%%\n", internal[i], support[i] * 100.0);
  }

  // Replay the real task streams on the simulated Cell under MGPS.
  rt::MgpsPolicy mgps;
  rt::EdtlpPolicy edtlp;
  const rt::RunResult rm = rt::run_workload(workload, mgps, {});
  const rt::RunResult re = rt::run_workload(workload, edtlp, {});
  std::printf("\nSimulated Cell BE replay of the bootstrap phase:\n");
  std::printf("  EDTLP: %s   (SPE utilization %.1f%%)\n",
              util::Table::seconds(re.makespan_s).c_str(),
              re.mean_spe_utilization * 100);
  std::printf("  MGPS : %s   (SPE utilization %.1f%%, mean loop degree "
              "%.2f)\n", util::Table::seconds(rm.makespan_s).c_str(),
              rm.mean_spe_utilization * 100, rm.mean_loop_degree);
  return 0;
}
