// cell_jobsvc: drive the fault-tolerant multi-tenant job service over a
// simulated blade fleet (see DESIGN.md "Job service" and README quick-start).
//
// The whole run happens in virtual time on the deterministic event engine,
// so the same flags always print the same bytes.  The interesting knobs:
//
//   --blades / --slots / --speed   fleet shape
//   --jobs / --tenants / --seed    synthetic multi-tenant job mix
//   --blade-fail-rate              seeded fail-stop blade kills (migration!)
//   --step-fail-rate               transient per-step execution faults
//   --max-queue / --quota          admission control and backpressure
//   --results                      print the per-job results block whose
//                                  bytes are invariant under faults
//
// Exit status: 0 when every admitted job completed, 1 otherwise (some jobs
// rejected/shed/failed — expected under overload configs).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "jobsvc/service.hpp"
#include "sim/fault.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/recorder.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

constexpr const char* kUsage = R"(usage: cell_jobsvc [options]

fleet:
  --blades=N           number of blades (default 4)
  --slots=N            job slots per blade (default 4)
  --speed=X            relative blade speed (default 1.0)

workload:
  --jobs=N             jobs in the synthetic mix (default 64)
  --tenants=N          tenants sharing the service (default 4)
  --mix-seed=N         job-mix shape seed (default 42)
  --arrival-span=S     arrivals uniform in [0, S) virtual seconds (default 0.5)
  --deadline=S         per-job deadline, 0 disables (default 0)

service:
  --seed=N             service seed: job payloads derive from it (default 2026)
  --max-queue=N        queue bound, 0 unbounded (default 1024)
  --quota=N            per-tenant active-job quota, 0 off (default 0)
  --checkpoint-every=N steps between snapshots (default 8)
  --max-failures=N     retry budget per job (default 5)

faults:
  --fault-seed=N       fault/jitter seed (default 7)
  --blade-fail-rate=P  per-blade fail-stop probability (default 0)
  --straggler-rate=P   per-blade degrade probability (default 0)
  --step-fail-rate=P   per-step transient failure probability (default 0)

integrity (DESIGN.md section 11):
  --fault-bitflip-rate=P  per-step silent result-corruption probability
                       (default 0); undetected poison flows into results
  --verify-fraction=X  fraction of steps re-executed redundantly to catch
                       corruption (default 0); jobs that keep failing
                       verification are reported "corrupt", never clean
  --quarantine-threshold=N  detected corruptions before a blade is
                       permanently quarantined, 0 disables (default 3)

output:
  --results[=FILE]     print (or write) the fault-invariant per-job results
                       block; a blade-kill run's FILE diffs empty against a
                       fault-free run's
  --metrics[=FILE]     print (or write) the MetricsRegistry JSON
  --trace=FILE         write the event trace as text ("-" for stdout)

observability (DESIGN.md section 12):
  --flight-recorder[=N]  keep the last N trace events per thread in a bounded
                       ring (bare flag: 4096) and dump them on crash or
                       nonzero exit
  --flight-dump=FILE   where the flight-recorder dump goes
                       (default flight.trace)
  --die-at-event=N     kill the process (SIGKILL) at the Nth executed step --
                       the crash clock; the flight recorder dumps first
  --statusz=FILE       write periodic cbe-statusz-v1 JSON snapshots to FILE
                       (view with cell_top)
  --statusz-text=FILE  also write the text rendering of each snapshot
  --statusz-every=S    virtual seconds between snapshots (default 0.05)
)";

/// Forwards every event to both sinks: lets --trace (full stream) and
/// --flight-recorder (bounded tail) observe one run simultaneously.
struct TeeSink final : cbe::trace::TraceSink {
  cbe::trace::TraceSink* a = nullptr;
  cbe::trace::TraceSink* b = nullptr;
  void record(std::int64_t t_ns, cbe::trace::EventKind kind, int spe, int pid,
              std::int64_t x = 0, std::int64_t y = 0) override {
    if (a != nullptr) a->record(t_ns, kind, spe, pid, x, y);
    if (b != nullptr) b->record(t_ns, kind, spe, pid, x, y);
  }
};

// --results / --metrics accept an optional file: bare flag -> stdout,
// --flag=FILE -> the file.  Returns false on write failure.
bool emit(const std::string& dest, const std::string& text) {
  if (dest == "true") {
    std::fputs(text.c_str(), stdout);
    return true;
  }
  return cbe::trace::write_file(dest, text);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbe;

  util::Cli cli(argc, argv);
  jobsvc::ServiceConfig cfg;
  cfg.fleet = platform::BladeFleetConfig::uniform(
      static_cast<int>(cli.get_int("blades", 4)),
      static_cast<int>(cli.get_int("slots", 4)),
      cli.get_double("speed", 1.0));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2026));
  cfg.admission.max_queue = static_cast<int>(cli.get_int("max-queue", 1024));
  cfg.admission.per_tenant_quota = static_cast<int>(cli.get_int("quota", 0));
  cfg.checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every", 8));
  cfg.retry.max_failures =
      static_cast<int>(cli.get_int("max-failures", 5));
  cfg.fault.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 7));
  cfg.fault.blade_fail_rate = cli.get_double("blade-fail-rate", 0.0);
  cfg.fault.straggler_rate = cli.get_double("straggler-rate", 0.0);
  cfg.step_fail_rate = cli.get_double("step-fail-rate", 0.0);
  cfg.step_corrupt_rate = cli.get_double("fault-bitflip-rate", 0.0);
  cfg.verify_fraction = cli.get_double("verify-fraction", 0.0);
  cfg.quarantine_threshold =
      static_cast<int>(cli.get_int("quarantine-threshold", 3));

  jobsvc::JobMixConfig mix;
  mix.jobs = static_cast<int>(cli.get_int("jobs", 64));
  mix.tenants = static_cast<int>(cli.get_int("tenants", 4));
  mix.seed = static_cast<std::uint64_t>(cli.get_int("mix-seed", 42));
  mix.arrival_span_s = cli.get_double("arrival-span", 0.5);
  mix.deadline_s = cli.get_double("deadline", 0.0);

  const std::string results_dest = cli.get("results", "");
  const std::string metrics_dest = cli.get("metrics", "");
  const std::string trace_path = cli.get("trace", "");

  const std::string recorder_flag = cli.get("flight-recorder", "");
  const std::string flight_dump = cli.get("flight-dump", "flight.trace");
  const std::int64_t die_at = cli.get_int("die-at-event", 0);
  cfg.statusz.json_path = cli.get("statusz", "");
  cfg.statusz.text_path = cli.get("statusz-text", "");
  if (!cfg.statusz.json_path.empty() || !cfg.statusz.text_path.empty()) {
    cfg.statusz.every_s = cli.get_double("statusz-every", 0.05);
  }
  cli.enforce_usage_or_exit(kUsage);

  trace::TraceSink sink;
  trace::MetricsRegistry metrics;
  std::size_t ring = 0;
  if (!recorder_flag.empty()) {
    ring = recorder_flag == "true"
               ? 4096
               : static_cast<std::size_t>(std::strtoull(
                     recorder_flag.c_str(), nullptr, 10));
    if (ring == 0) ring = 4096;
  }
  trace::FlightRecorder recorder(ring == 0 ? 16 : ring);
  TeeSink tee;
  if (ring != 0) {
    trace::install_flight_recorder(&recorder, flight_dump);
    // Dump the recorder as the process's last act when the crash clock
    // kills it: the whole point of --die-at-event + --flight-recorder.
    sim::set_crash_clock_hook(
        []() noexcept { cbe::trace::dump_flight_recorder("crash-clock",
                                                         /*force=*/true); });
    if (!trace_path.empty()) {
      tee.a = &sink;
      tee.b = &recorder;
      cfg.trace = &tee;
    } else {
      cfg.trace = &recorder;
    }
  } else if (!trace_path.empty()) {
    cfg.trace = &sink;
  }
  if (die_at > 0) sim::arm_crash_clock(die_at);
  cfg.metrics = &metrics;

  jobsvc::Service svc(cfg);
  const jobsvc::ServiceReport rep = svc.run(jobsvc::make_job_mix(mix));

  std::fputs(rep.to_text().c_str(), stdout);
  // Any nonzero exit leaves a flight-recorder dump behind (when one is
  // installed): the failure triage artifact, same format as the crash dump.
  auto fail = [](int code, const char* reason) {
    trace::dump_flight_recorder(reason);
    return code;
  };
  // Sustained watchdog churn must not leak event-queue memory: resident
  // entries (live + cancelled corpses) stay proportional to live events.
  if (rep.engine_queue_peak > 2 * rep.engine_live_peak + 64) {
    CBE_LOG_C(Error, "jobsvc",
              "engine queue leak: queue_peak=%llu live_peak=%llu",
              static_cast<unsigned long long>(rep.engine_queue_peak),
              static_cast<unsigned long long>(rep.engine_live_peak));
    return fail(3, "engine-queue-leak");
  }
  if (!results_dest.empty() && !emit(results_dest, rep.results_text()))
    return fail(2, "io-error");
  if (!metrics_dest.empty() && !emit(metrics_dest, metrics.to_json() + "\n"))
    return fail(2, "io-error");
  if (!trace_path.empty()) {
    const std::string text = trace::to_text(sink.events());
    if (trace_path == "-") {
      std::fputs(text.c_str(), stdout);
    } else if (!trace::write_file(trace_path, text)) {
      return fail(2, "io-error");
    }
  }
  if (rep.completed == rep.submitted) return 0;
  return fail(1, "incomplete-jobs");
}
