// Design-space exploration with the Cell machine model: how do the
// scheduling policies respond as the chip itself changes?  Sweeps the SPE
// count (the paper's "future system scaling" discussion, Section 5.5) and
// the PPE context-switch cost (the EDTLP enabler, Section 5.2).
//
// A third sweep appears when fault injection is requested on the command
// line: --fault-seed=S with any of --spe-fail-rate, --dma-fail-rate, or
// --straggler enables the seeded fault plan (see DESIGN.md "Fault model")
// and reports per-policy degradation against the fault-free run.
//
// Structured tracing: --trace=<file> writes Chrome trace_event JSON (open in
// chrome://tracing or Perfetto) and --trace-text=<file> the deterministic
// text format, both captured from one fault-injected MGPS run so the
// recovery machinery (watchdog, re-offload, PPE fallback) shows up in the
// timeline.  --metrics=<file> writes that run's metrics JSON.
//
//   build/examples/cell_explorer [--bootstraps=N] [--fault-seed=S]
//       [--spe-fail-rate=P] [--dma-fail-rate=P] [--straggler=P]
//       [--straggler-factor=F] [--trace=F] [--trace-text=F] [--metrics=F]
#include <cstdio>

#include "runtime/mgps.hpp"
#include "runtime/policy.hpp"
#include "runtime/sim_runtime.hpp"
#include "task/synthetic.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);
  const int bootstraps = static_cast<int>(cli.get_int("bootstraps", 4));

  task::SyntheticConfig scfg;
  scfg.tasks_per_bootstrap = static_cast<int>(cli.get_int("tasks", 400));
  const task::Workload workload = task::make_synthetic(bootstraps, scfg);

  {
    util::Table table("Sweep 1: SPEs per Cell (" +
                      std::to_string(bootstraps) + " bootstraps)");
    table.header({"SPEs", "EDTLP", "MGPS", "MGPS gain", "MGPS loop degree"});
    for (int spes : {2, 4, 6, 8, 12, 16}) {
      rt::RunConfig cfg;
      cfg.cell.spes_per_cell = spes;
      rt::EdtlpPolicy edtlp;
      rt::MgpsPolicy mgps;
      const auto re = rt::run_workload(workload, edtlp, cfg);
      const auto rm = rt::run_workload(workload, mgps, cfg);
      table.row({std::to_string(spes), util::Table::seconds(re.makespan_s),
                 util::Table::seconds(rm.makespan_s),
                 util::Table::num(re.makespan_s / rm.makespan_s) + "x",
                 util::Table::num(rm.mean_loop_degree)});
    }
    table.print();
    std::printf("With more SPEs than runnable tasks, only loop-level "
                "parallelism can use the extra cores - MGPS's gain grows "
                "with the SPE count.\n\n");
  }

  {
    util::Table table("Sweep 2: PPE context-switch cost, 8 bootstraps");
    table.header({"switch cost", "EDTLP", "Linux", "EDTLP gain"});
    const task::Workload wl8 = task::make_synthetic(8, scfg);
    for (double us : {0.5, 1.5, 5.0, 15.0, 50.0}) {
      rt::RunConfig cfg;
      cfg.cell.ctx_switch = sim::Time::us(us);
      rt::EdtlpPolicy edtlp;
      rt::LinuxPolicy linux_policy;
      const auto re = rt::run_workload(wl8, edtlp, cfg);
      const auto rl = rt::run_workload(wl8, linux_policy, cfg);
      table.row({util::Table::num(us, 1) + "us",
                 util::Table::seconds(re.makespan_s),
                 util::Table::seconds(rl.makespan_s),
                 util::Table::num(rl.makespan_s / re.makespan_s) + "x"});
    }
    table.print();
    std::printf("EDTLP's voluntary switches pay off as long as the switch "
                "cost stays well under the task granularity (96us); the "
                "Linux baseline is insensitive because it never switches "
                "on off-load.\n");
  }

  {
    sim::FaultConfig fc;
    fc.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 2026));
    fc.spe_fail_rate = cli.get_double("spe-fail-rate", 0.0);
    fc.dma_fail_rate = cli.get_double("dma-fail-rate", 0.0);
    fc.straggler_rate = cli.get_double("straggler", 0.0);
    fc.straggler_factor =
        cli.get_double("straggler-factor", fc.straggler_factor);
    if (fc.enabled()) {
      std::printf("\n");
      util::Table table("Sweep 3: fault injection (seed " +
                        std::to_string(fc.seed) + ", " +
                        std::to_string(bootstraps) + " bootstraps)");
      table.header({"policy", "fault-free", "faulty", "degradation",
                    "SPEs lost", "stragglers", "DMA retries", "re-offloads",
                    "PPE rescues"});
      rt::EdtlpPolicy e1, e2;
      rt::MgpsPolicy m1, m2;
      struct Row { const char* label; rt::SchedulerPolicy* clean_pol;
                   rt::SchedulerPolicy* fault_pol; };
      for (const Row& p : {Row{"EDTLP", &e1, &e2}, Row{"MGPS", &m1, &m2}}) {
        const auto clean = rt::run_workload(workload, *p.clean_pol, {});
        rt::RunConfig cfg;
        cfg.fault = fc;
        const auto faulty = rt::run_workload(workload, *p.fault_pol, cfg);
        table.row({p.label, util::Table::seconds(clean.makespan_s),
                   util::Table::seconds(faulty.makespan_s),
                   util::Table::num(faulty.makespan_s / clean.makespan_s) +
                       "x",
                   std::to_string(faulty.spe_failures),
                   std::to_string(faulty.stragglers),
                   std::to_string(faulty.dma_retries),
                   std::to_string(faulty.reoffloads),
                   std::to_string(faulty.fault_ppe_fallbacks)});
      }
      table.print();
      std::printf("Same seed, same faults: rerun with a different "
                  "--fault-seed to sample another fault schedule.\n");
    }

    const std::string trace_json = cli.get("trace", "");
    const std::string trace_text = cli.get("trace-text", "");
    const std::string metrics_path = cli.get("metrics", "");
    if (!trace_json.empty() || !trace_text.empty() || !metrics_path.empty()) {
#if CBE_TRACE_ENABLED
      // One traced MGPS run.  Unless the user picked their own fault rates,
      // inject a light default mix so the trace exercises the recovery
      // paths (watchdog fire, re-offload, PPE fallback), not just the happy
      // path.
      if (!fc.enabled()) {
        fc.spe_fail_rate = 0.25;
        fc.dma_fail_rate = 0.02;
        fc.straggler_rate = 0.25;
      }
      rt::RunConfig cfg;
      cfg.fault = fc;
      trace::TraceSink sink;
      trace::MetricsRegistry registry;
      cfg.trace = &sink;
      cfg.metrics = &registry;
      rt::MgpsPolicy mgps;
      rt::run_workload(workload, mgps, cfg);
      std::printf("\ntraced MGPS run (fault seed %llu): %zu events\n",
                  static_cast<unsigned long long>(fc.seed), sink.size());
      if (!trace_json.empty() &&
          trace::write_file(trace_json, trace::to_chrome_json(sink.events()))) {
        std::printf("  %s (Chrome trace_event JSON; open in Perfetto)\n",
                    trace_json.c_str());
      }
      if (!trace_text.empty() &&
          trace::write_file(trace_text, trace::to_text(sink.events()))) {
        std::printf("  %s (deterministic text trace)\n", trace_text.c_str());
      }
      if (!metrics_path.empty() &&
          trace::write_file(metrics_path, registry.to_json())) {
        std::printf("  %s (metrics JSON)\n", metrics_path.c_str());
      }
#else
      std::fprintf(stderr,
                   "--trace/--metrics need a CBE_TRACE=ON build; this one "
                   "compiled tracing out.\n");
#endif
    }
  }
  return 0;
}
