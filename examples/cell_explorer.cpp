// Design-space exploration with the Cell machine model: how do the
// scheduling policies respond as the chip itself changes?  Sweeps the SPE
// count (the paper's "future system scaling" discussion, Section 5.5) and
// the PPE context-switch cost (the EDTLP enabler, Section 5.2).
//
//   build/examples/cell_explorer [--bootstraps=N]
#include <cstdio>

#include "runtime/mgps.hpp"
#include "runtime/policy.hpp"
#include "runtime/sim_runtime.hpp"
#include "task/synthetic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);
  const int bootstraps = static_cast<int>(cli.get_int("bootstraps", 4));

  task::SyntheticConfig scfg;
  scfg.tasks_per_bootstrap = static_cast<int>(cli.get_int("tasks", 400));
  const task::Workload workload = task::make_synthetic(bootstraps, scfg);

  {
    util::Table table("Sweep 1: SPEs per Cell (" +
                      std::to_string(bootstraps) + " bootstraps)");
    table.header({"SPEs", "EDTLP", "MGPS", "MGPS gain", "MGPS loop degree"});
    for (int spes : {2, 4, 6, 8, 12, 16}) {
      rt::RunConfig cfg;
      cfg.cell.spes_per_cell = spes;
      rt::EdtlpPolicy edtlp;
      rt::MgpsPolicy mgps;
      const auto re = rt::run_workload(workload, edtlp, cfg);
      const auto rm = rt::run_workload(workload, mgps, cfg);
      table.row({std::to_string(spes), util::Table::seconds(re.makespan_s),
                 util::Table::seconds(rm.makespan_s),
                 util::Table::num(re.makespan_s / rm.makespan_s) + "x",
                 util::Table::num(rm.mean_loop_degree)});
    }
    table.print();
    std::printf("With more SPEs than runnable tasks, only loop-level "
                "parallelism can use the extra cores - MGPS's gain grows "
                "with the SPE count.\n\n");
  }

  {
    util::Table table("Sweep 2: PPE context-switch cost, 8 bootstraps");
    table.header({"switch cost", "EDTLP", "Linux", "EDTLP gain"});
    const task::Workload wl8 = task::make_synthetic(8, scfg);
    for (double us : {0.5, 1.5, 5.0, 15.0, 50.0}) {
      rt::RunConfig cfg;
      cfg.cell.ctx_switch = sim::Time::us(us);
      rt::EdtlpPolicy edtlp;
      rt::LinuxPolicy linux_policy;
      const auto re = rt::run_workload(wl8, edtlp, cfg);
      const auto rl = rt::run_workload(wl8, linux_policy, cfg);
      table.row({util::Table::num(us, 1) + "us",
                 util::Table::seconds(re.makespan_s),
                 util::Table::seconds(rl.makespan_s),
                 util::Table::num(rl.makespan_s / re.makespan_s) + "x"});
    }
    table.print();
    std::printf("EDTLP's voluntary switches pay off as long as the switch "
                "cost stays well under the task granularity (96us); the "
                "Linux baseline is insensitive because it never switches "
                "on off-load.\n");
  }
  return 0;
}
