// Design-space exploration with the Cell machine model: how do the
// scheduling policies respond as the chip itself changes?  Sweeps the SPE
// count (the paper's "future system scaling" discussion, Section 5.5) and
// the PPE context-switch cost (the EDTLP enabler, Section 5.2).
//
// A third sweep appears when fault injection is requested on the command
// line: --fault-seed=S with any of --spe-fail-rate, --dma-fail-rate, or
// --straggler enables the seeded fault plan (see DESIGN.md "Fault model")
// and reports per-policy degradation against the fault-free run.
//
// Structured tracing: --trace=<file> writes Chrome trace_event JSON (open in
// chrome://tracing or Perfetto) and --trace-text=<file> the deterministic
// text format, both captured from one fault-injected MGPS run so the
// recovery machinery (watchdog, re-offload, PPE fallback) shows up in the
// timeline.  --metrics=<file> writes that run's metrics JSON.
//
// Checkpoint/restart (see DESIGN.md "Checkpoint/restart"): --checkpoint or
// --resume switches to the long-running bootstrap job, snapshotting
// progress crash-consistently every --checkpoint-every replicates.
// --die-at-event=N arms the process-level kill switch for kill-and-resume
// testing; --out writes the deterministic end-of-job report.
//
//   build/examples/cell_explorer [--bootstraps=N] [--fault-seed=S]
//       [--spe-fail-rate=P] [--dma-fail-rate=P] [--straggler=P]
//       [--straggler-factor=F] [--trace=F] [--trace-text=F] [--metrics=F]
//       [--checkpoint=F] [--checkpoint-every=N] [--resume=F]
//       [--die-at-event=N] [--taxa=N] [--sites=N] [--seed=S] [--out=F]
//       [--strict-resume]
#include <cstdio>

#include "ckpt/runner.hpp"
#include "runtime/mgps.hpp"
#include "runtime/policy.hpp"
#include "runtime/sim_runtime.hpp"
#include "task/synthetic.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

constexpr const char kUsage[] =
    "cell_explorer [--bootstraps=N] [--tasks=N] [--fault-seed=S]\n"
    "    [--spe-fail-rate=P] [--dma-fail-rate=P] [--straggler=P]\n"
    "    [--straggler-factor=F] [--fault-bitflip-rate=P]\n"
    "    [--verify-fraction=X] [--trace=F] [--trace-text=F] [--metrics=F]\n"
    "    [--checkpoint=F] [--checkpoint-every=N] [--resume=F]\n"
    "    [--die-at-event=N] [--taxa=N] [--sites=N] [--seed=S] [--out=F]\n"
    "    [--strict-resume]";

// The long-running checkpointed bootstrap job (kill-and-resume workload).
int run_checkpointed_job(const std::string& checkpoint,
                         const std::string& resume, int checkpoint_every,
                         std::int64_t die_at_event, bool strict_resume,
                         const cbe::ckpt::BootstrapJob& job,
                         const std::string& out_path) {
  using namespace cbe;
  ckpt::RunState st = ckpt::make_fresh(job);
  int resumed_at = 0;
  if (!resume.empty()) {
    try {
      st = ckpt::load(resume);
      resumed_at = static_cast<int>(st.done.size());
      if (st.job.seed != job.seed || st.job.bootstraps != job.bootstraps ||
          st.job.taxa != job.taxa || st.job.sites != job.sites) {
        std::fprintf(stderr,
                     "resume: checkpoint job (seed %llu, %d bootstraps, "
                     "%dx%d) disagrees with the command line; the "
                     "checkpoint's job configuration wins\n",
                     static_cast<unsigned long long>(st.job.seed),
                     st.job.bootstraps, st.job.taxa, st.job.sites);
      }
    } catch (const ckpt::CkptError& e) {
      std::fprintf(stderr, "resume: rejected checkpoint '%s' [%s]: %s\n",
                   resume.c_str(), ckpt::error_kind_name(e.kind()),
                   e.what());
      if (strict_resume) return 1;
      std::fprintf(stderr, "resume: falling back to a cold start\n");
      st = ckpt::make_fresh(job);
      resumed_at = 0;
    }
  }

  // Arm the kill switch relative to the restored fault-plan position so
  // "event N" means the same absolute event across a crash.
  sim::arm_crash_clock(die_at_event, st.crash_position);

  ckpt::RunnerOptions opt;
  opt.checkpoint_path = checkpoint;
  opt.checkpoint_every = checkpoint_every;
  std::printf("bootstrap job: %d replicates (%d taxa x %d sites, seed %llu)",
              st.job.bootstraps, st.job.taxa, st.job.sites,
              static_cast<unsigned long long>(st.job.seed));
  if (resumed_at > 0) {
    std::printf(", resumed at replicate %d/%d", resumed_at,
                st.job.bootstraps);
  }
  std::printf("\n");

  const ckpt::RunReport report = ckpt::run_job(st, opt);
  const std::string text = report.to_text();
  std::fputs(text.c_str(), stdout);
  if (report.ckpt_io_retries > 0) {
    std::fprintf(stderr, "checkpoint: %d transient write failure(s) retried\n",
                 report.ckpt_io_retries);
  }
  if (!report.ckpt_error.empty()) {
    // The job itself completed; exit non-zero because its durability
    // guarantee did not hold (some snapshots were abandoned).
    std::fprintf(stderr,
                 "checkpoint: %d snapshot(s) abandoned after retries; last "
                 "error: %s\n",
                 report.ckpt_failed_snapshots, report.ckpt_error.c_str());
    return 1;
  }
  if (!out_path.empty()) {
    if (!trace::write_file(out_path, text)) {
      std::fprintf(stderr, "failed to write report to %s\n",
                   out_path.c_str());
      return 1;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cbe;
  util::Cli cli(argc, argv);

  // Query every flag before enforcing usage, so unknown-flag detection sees
  // the complete set regardless of which mode runs.
  const int bootstraps = static_cast<int>(cli.get_int("bootstraps", 4));
  task::SyntheticConfig scfg;
  scfg.tasks_per_bootstrap = static_cast<int>(cli.get_int("tasks", 400));

  sim::FaultConfig fc;
  fc.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 2026));
  fc.spe_fail_rate = cli.get_double("spe-fail-rate", 0.0);
  fc.dma_fail_rate = cli.get_double("dma-fail-rate", 0.0);
  fc.straggler_rate = cli.get_double("straggler", 0.0);
  fc.straggler_factor = cli.get_double("straggler-factor",
                                       fc.straggler_factor);
  // One knob arms both silent-corruption channels (in-transit DMA flips and
  // wrong-but-well-framed results); --verify-fraction arms both detectors
  // (CRC framing plus sampled redundant execution).
  const double bitflip_rate = cli.get_double("fault-bitflip-rate", 0.0);
  const double verify_fraction = cli.get_double("verify-fraction", 0.0);
  fc.dma_bitflip_rate = bitflip_rate;
  fc.result_corrupt_rate = bitflip_rate;
  rt::IntegrityConfig integrity;
  integrity.verify_fraction = verify_fraction;
  integrity.crc_framing = verify_fraction > 0.0;
  const std::string trace_json = cli.get("trace", "");
  const std::string trace_text = cli.get("trace-text", "");
  const std::string metrics_path = cli.get("metrics", "");

  const std::string checkpoint = cli.get("checkpoint", "");
  const std::string resume = cli.get("resume", "");
  const int checkpoint_every =
      static_cast<int>(cli.get_int("checkpoint-every", 1));
  const std::int64_t die_at_event = cli.get_int("die-at-event", 0);
  const bool strict_resume = cli.get_bool("strict-resume", false);
  ckpt::BootstrapJob job;
  job.taxa = static_cast<int>(cli.get_int("taxa", job.taxa));
  job.sites = static_cast<int>(cli.get_int("sites", job.sites));
  job.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2024));
  job.bootstraps = bootstraps;
  job.fault_seed = fc.seed;
  job.dma_bitflip_rate = bitflip_rate;
  job.result_corrupt_rate = bitflip_rate;
  job.verify_fraction = verify_fraction;
  const std::string out_path = cli.get("out", "");

  cli.enforce_usage_or_exit(kUsage);

  if (!checkpoint.empty() || !resume.empty()) {
    return run_checkpointed_job(checkpoint, resume, checkpoint_every,
                                die_at_event, strict_resume, job, out_path);
  }

  const task::Workload workload = task::make_synthetic(bootstraps, scfg);

  {
    util::Table table("Sweep 1: SPEs per Cell (" +
                      std::to_string(bootstraps) + " bootstraps)");
    table.header({"SPEs", "EDTLP", "MGPS", "MGPS gain", "MGPS loop degree"});
    for (int spes : {2, 4, 6, 8, 12, 16}) {
      rt::RunConfig cfg;
      cfg.cell.spes_per_cell = spes;
      rt::EdtlpPolicy edtlp;
      rt::MgpsPolicy mgps;
      const auto re = rt::run_workload(workload, edtlp, cfg);
      const auto rm = rt::run_workload(workload, mgps, cfg);
      table.row({std::to_string(spes), util::Table::seconds(re.makespan_s),
                 util::Table::seconds(rm.makespan_s),
                 util::Table::num(re.makespan_s / rm.makespan_s) + "x",
                 util::Table::num(rm.mean_loop_degree)});
    }
    table.print();
    std::printf("With more SPEs than runnable tasks, only loop-level "
                "parallelism can use the extra cores - MGPS's gain grows "
                "with the SPE count.\n\n");
  }

  {
    util::Table table("Sweep 2: PPE context-switch cost, 8 bootstraps");
    table.header({"switch cost", "EDTLP", "Linux", "EDTLP gain"});
    const task::Workload wl8 = task::make_synthetic(8, scfg);
    for (double us : {0.5, 1.5, 5.0, 15.0, 50.0}) {
      rt::RunConfig cfg;
      cfg.cell.ctx_switch = sim::Time::us(us);
      rt::EdtlpPolicy edtlp;
      rt::LinuxPolicy linux_policy;
      const auto re = rt::run_workload(wl8, edtlp, cfg);
      const auto rl = rt::run_workload(wl8, linux_policy, cfg);
      table.row({util::Table::num(us, 1) + "us",
                 util::Table::seconds(re.makespan_s),
                 util::Table::seconds(rl.makespan_s),
                 util::Table::num(rl.makespan_s / re.makespan_s) + "x"});
    }
    table.print();
    std::printf("EDTLP's voluntary switches pay off as long as the switch "
                "cost stays well under the task granularity (96us); the "
                "Linux baseline is insensitive because it never switches "
                "on off-load.\n");
  }

  {
    if (fc.enabled()) {
      std::printf("\n");
      util::Table table("Sweep 3: fault injection (seed " +
                        std::to_string(fc.seed) + ", " +
                        std::to_string(bootstraps) + " bootstraps)");
      table.header({"policy", "fault-free", "faulty", "degradation",
                    "SPEs lost", "stragglers", "DMA retries", "re-offloads",
                    "PPE rescues"});
      rt::EdtlpPolicy e1, e2;
      rt::MgpsPolicy m1, m2;
      struct Row { const char* label; rt::SchedulerPolicy* clean_pol;
                   rt::SchedulerPolicy* fault_pol; };
      rt::RunResult last_faulty;
      for (const Row& p : {Row{"EDTLP", &e1, &e2}, Row{"MGPS", &m1, &m2}}) {
        const auto clean = rt::run_workload(workload, *p.clean_pol, {});
        rt::RunConfig cfg;
        cfg.fault = fc;
        cfg.integrity = integrity;
        const auto faulty = rt::run_workload(workload, *p.fault_pol, cfg);
        last_faulty = faulty;
        table.row({p.label, util::Table::seconds(clean.makespan_s),
                   util::Table::seconds(faulty.makespan_s),
                   util::Table::num(faulty.makespan_s / clean.makespan_s) +
                       "x",
                   std::to_string(faulty.spe_failures),
                   std::to_string(faulty.stragglers),
                   std::to_string(faulty.dma_retries),
                   std::to_string(faulty.reoffloads),
                   std::to_string(faulty.fault_ppe_fallbacks)});
      }
      table.print();
      std::printf("Same seed, same faults: rerun with a different "
                  "--fault-seed to sample another fault schedule.\n");
      if (bitflip_rate > 0.0) {
        std::printf(
            "integrity (MGPS run): injected %llu detected %llu silent %llu "
            "reexec %llu retries %llu quarantined %llu\n",
            static_cast<unsigned long long>(last_faulty.corrupt_injected),
            static_cast<unsigned long long>(last_faulty.corrupt_detected),
            static_cast<unsigned long long>(last_faulty.corrupt_silent),
            static_cast<unsigned long long>(last_faulty.verify_reexecs),
            static_cast<unsigned long long>(last_faulty.integrity_retries),
            static_cast<unsigned long long>(last_faulty.quarantined_spes));
      }
    }

    if (!trace_json.empty() || !trace_text.empty() || !metrics_path.empty()) {
#if CBE_TRACE_ENABLED
      // One traced MGPS run.  Unless the user picked their own fault rates,
      // inject a light default mix so the trace exercises the recovery
      // paths (watchdog fire, re-offload, PPE fallback), not just the happy
      // path.
      if (!fc.enabled()) {
        fc.spe_fail_rate = 0.25;
        fc.dma_fail_rate = 0.02;
        fc.straggler_rate = 0.25;
      }
      rt::RunConfig cfg;
      cfg.fault = fc;
      cfg.integrity = integrity;
      trace::TraceSink sink;
      trace::MetricsRegistry registry;
      cfg.trace = &sink;
      cfg.metrics = &registry;
      rt::MgpsPolicy mgps;
      rt::run_workload(workload, mgps, cfg);
      std::printf("\ntraced MGPS run (fault seed %llu): %zu events\n",
                  static_cast<unsigned long long>(fc.seed), sink.size());
      // A failed export (full disk, bad path) must fail the process: a
      // silently truncated trace looks exactly like a short run.
      bool export_ok = true;
      if (!trace_json.empty()) {
        if (trace::write_file(trace_json,
                              trace::to_chrome_json(sink.events()))) {
          std::printf("  %s (Chrome trace_event JSON; open in Perfetto)\n",
                      trace_json.c_str());
        } else {
          export_ok = false;
        }
      }
      if (!trace_text.empty()) {
        if (trace::write_file(trace_text, trace::to_text(sink.events()))) {
          std::printf("  %s (deterministic text trace)\n",
                      trace_text.c_str());
        } else {
          export_ok = false;
        }
      }
      if (!metrics_path.empty()) {
        if (trace::write_file(metrics_path, registry.to_json())) {
          std::printf("  %s (metrics JSON)\n", metrics_path.c_str());
        } else {
          export_ok = false;
        }
      }
      if (!export_ok) return 1;
#else
      std::fprintf(stderr,
                   "--trace/--metrics need a CBE_TRACE=ON build; this one "
                   "compiled tracing out.\n");
#endif
    }
  }
  return 0;
}
